"""Shared benchmark harness: one JSON schema for every ``bench_*.py``.

Every benchmark's ``main()`` builds its record through this module, so
CI (and any trajectory tooling reading the uploaded artifacts) sees one
machine-readable shape per run::

    {
      "schema": 1,                  # BENCH_SCHEMA version
      "bench": "serve_load",        # benchmark name (file stem sans bench_)
      "git_sha": "…",               # GITHUB_SHA or `git rev-parse HEAD`
      "mode": "smoke" | "full",
      "ops_per_sec": 1234.5,        # headline throughput (0.0 if n/a)
      "wall_time_s": 2.34,          # total timed wall clock
      "correct": true,              # semantic correctness — NEVER a
                                    #   wall-clock ratio, so CI failing
                                    #   on it is not flaky
      "extra": {…}                  # bench-specific detail rows
    }

Usage inside a benchmark::

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    …run, measure…
    record = benchlib.record("my_bench", args, ops_per_sec=…,
                             wall_time_s=…, correct=…, extra={…})
    return benchlib.finish(record, args)

``finish`` prints the one-line summary, writes ``--json PATH`` when
given, and returns the process exit code (non-zero iff not correct).

Run as a script this module is the CI gate::

    python benchmarks/benchlib.py --check artifacts/BENCH_*.json

which exits non-zero if any record is missing, unparseable, from a
different schema version, or reports ``correct: false``.

With ``--compare PREV_DIR_OR_FILES`` the gate additionally diffs the
current records against the previous run's artifacts (the benchmark
*trajectory*): per-bench ops/sec deltas are printed, appended as a
markdown table to ``$GITHUB_STEP_SUMMARY`` when set, and a throughput
drop beyond ``--max-regression`` (default 30%) fails the job alongside
any ``correct: false``::

    python benchmarks/benchlib.py --check new/BENCH_*.json \
        --compare prev-artifacts/
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

BENCH_SCHEMA = 1


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalised here.
    Returns 0 on platforms without :mod:`resource` so records stay
    schema-consistent everywhere.
    """
    try:
        import resource
    except ImportError:  # non-POSIX: no rusage
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def git_sha() -> str:
    """The commit under test: CI's GITHUB_SHA, else the local HEAD."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=Path(__file__).resolve().parent)
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


#: Timed repetitions per throughput record; the reported ops/sec is the
#: median run, so one noisy-neighbour blip doesn't fake a trajectory
#: regression (or an improvement).
DEFAULT_REPEATS = 3


def make_parser(description: str) -> argparse.ArgumentParser:
    """The shared CLI every benchmark exposes: ``--smoke`` + ``--json``
    + ``--repeats``."""
    parser = argparse.ArgumentParser(
        description=description,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI workload: correctness assertions "
                             "at reduced scale")
    parser.add_argument("--json", metavar="PATH",
                        help="write the schema-consistent BENCH record "
                             "to PATH")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="timed repetitions; the record keeps the "
                             "median run's throughput (default "
                             f"{DEFAULT_REPEATS})")
    return parser


def run_repeats(run_once, repeats: int = DEFAULT_REPEATS):
    """Run ``run_once() -> (ops_per_sec, wall_s, correct, extra)``
    ``repeats`` times; returns the same tuple shape with the
    median-throughput run's ops/sec and extra, the *summed* wall time
    (what the benchmark actually cost), and ``correct`` only if every
    repetition was.  ``extra`` gains ``repeats`` and the per-run
    ``samples_ops_per_sec`` so the spread stays visible in artifacts.
    """
    repeats = max(1, int(repeats))
    samples = [run_once() for _ in range(repeats)]
    ranked = sorted(samples, key=lambda sample: sample[0])
    median = ranked[(len(ranked) - 1) // 2]
    extra = dict(median[3] or {})
    extra["repeats"] = repeats
    extra["samples_ops_per_sec"] = [round(float(s[0]), 2)
                                    for s in samples]
    return (median[0], sum(s[1] for s in samples),
            all(s[2] for s in samples), extra)


def record(bench: str, args: argparse.Namespace, *, ops_per_sec: float,
           wall_time_s: float, correct: bool,
           extra: dict | None = None) -> dict:
    """One schema-consistent result record for ``bench``.

    Every record carries a ``peak_rss_kb`` column in ``extra`` (the
    process-wide high-water mark at record time); benches that measure
    a tighter number themselves (e.g. an RSS *delta* around the timed
    region) may pre-populate the key and win.
    """
    extra = dict(extra or {})
    extra.setdefault("peak_rss_kb", peak_rss_kb())
    return {
        "schema": BENCH_SCHEMA,
        "bench": bench,
        "git_sha": git_sha(),
        "mode": "smoke" if getattr(args, "smoke", False) else "full",
        "ops_per_sec": round(float(ops_per_sec), 2),
        "wall_time_s": round(float(wall_time_s), 4),
        "correct": bool(correct),
        "extra": extra,
    }


def finish(result: dict, args: argparse.Namespace) -> int:
    """Print the summary line, write ``--json``, return the exit code."""
    verdict = "PASS" if result["correct"] else "FAIL"
    print(f"[BENCH {result['bench']}] {verdict} mode={result['mode']} "
          f"ops/s={result['ops_per_sec']} "
          f"wall={result['wall_time_s']}s")
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2, sort_keys=True)
                        + "\n")
        print(f"[BENCH {result['bench']}] wrote {path}")
    return 0 if result["correct"] else 1


def _load_records(paths: list[str]) -> tuple[dict[str, dict], int]:
    """Read records keyed by bench name; count unreadable files."""
    records: dict[str, dict] = {}
    failures = 0
    expanded: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            expanded.extend(sorted(path.glob("BENCH_*.json")))
        else:
            expanded.append(path)
    for path in expanded:
        try:
            result = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: UNREADABLE ({exc})")
            failures += 1
            continue
        name = result.get("bench")
        if isinstance(name, str):
            records[name] = result
    return records, failures


def check(paths: list[str]) -> int:
    """The CI gate over written records; prints one line per file."""
    if not paths:
        print("benchlib --check: no BENCH files given")
        return 1
    failures = 0
    for raw in paths:
        path = Path(raw)
        try:
            result = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: UNREADABLE ({exc})")
            failures += 1
            continue
        if result.get("schema") != BENCH_SCHEMA:
            print(f"{path}: schema {result.get('schema')!r} != "
                  f"{BENCH_SCHEMA}")
            failures += 1
            continue
        if result.get("correct") is not True:
            print(f"{path}: bench {result.get('bench')!r} reports "
                  "correct: false")
            failures += 1
            continue
        print(f"{path}: ok ({result.get('bench')}, "
              f"{result.get('ops_per_sec')} ops/s)")
    if failures:
        print(f"benchlib --check: {failures} failing record(s)")
        return 1
    print(f"benchlib --check: all {len(paths)} record(s) correct")
    return 0


def compare(current_paths: list[str], previous_paths: list[str],
            max_regression: float = 0.30) -> int:
    """Per-bench ops/sec deltas against the previous run's artifacts.

    A bench regresses when its throughput drops by more than
    ``max_regression`` relative to the previous record *of the same
    mode* (smoke vs full runs are never compared).  Benches with no
    previous record, a zero previous throughput, or a changed mode are
    reported informationally and never gate.  The delta table is echoed
    to stdout and appended to ``$GITHUB_STEP_SUMMARY`` when that file
    is available (the CI job summary).
    """
    current, cur_bad = _load_records(current_paths)
    previous, _prev_bad = _load_records(previous_paths)
    rows: list[tuple[str, str, str, str, str]] = []
    regressions = 0
    for name in sorted(current):
        record = current[name]
        ops = float(record.get("ops_per_sec") or 0.0)
        prev = previous.get(name)
        if prev is None:
            rows.append((name, "-", f"{ops:.2f}", "new", "ok"))
            continue
        if (prev.get("schema") != BENCH_SCHEMA
                or record.get("schema") != BENCH_SCHEMA):
            # A schema bump changes what ops_per_sec measures: the
            # records are not comparable, and gating on them would
            # wedge CI against stale artifacts forever.
            rows.append((name, "-", f"{ops:.2f}",
                         f"schema changed ({prev.get('schema')} -> "
                         f"{record.get('schema')})", "ok"))
            continue
        if prev.get("mode") != record.get("mode"):
            rows.append((name, "-", f"{ops:.2f}",
                         f"mode changed ({prev.get('mode')} -> "
                         f"{record.get('mode')})", "ok"))
            continue
        prev_ops = float(prev.get("ops_per_sec") or 0.0)
        if prev_ops <= 0.0 or ops <= 0.0:
            rows.append((name, f"{prev_ops:.2f}", f"{ops:.2f}", "n/a", "ok"))
            continue
        delta = ops / prev_ops - 1.0
        status = "ok"
        if delta < -max_regression:
            status = "REGRESSION"
            regressions += 1
        rows.append((name, f"{prev_ops:.2f}", f"{ops:.2f}",
                     f"{delta:+.1%}", status))
    for name in sorted(set(previous) - set(current)):
        rows.append((name, f"{previous[name].get('ops_per_sec')}", "-",
                     "missing from current run", "ok"))

    header = ("bench", "prev ops/s", "ops/s", "delta", "status")
    widths = [max(len(str(row[i])) for row in [header, *rows])
              for i in range(5)]
    lines = ["  ".join(str(cell).ljust(width)
                       for cell, width in zip(row, widths))
             for row in [header, *rows]]
    print("benchlib --compare "
          f"(gate: >{max_regression:.0%} throughput drop):")
    for line in lines:
        print(f"  {line}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        md = ["## Benchmark trajectory",
              f"Gate: fail on a >{max_regression:.0%} ops/sec drop vs the "
              "previous run's artifacts.", "",
              "| " + " | ".join(header) + " |",
              "|" + "|".join("---" for _ in header) + "|"]
        md.extend("| " + " | ".join(str(cell) for cell in row) + " |"
                  for row in rows)
        md.append("")
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(md) + "\n")

    failures = cur_bad + regressions
    incorrect = [name for name, record in current.items()
                 if record.get("correct") is not True]
    if incorrect:
        print(f"benchlib --compare: correct:false in {sorted(incorrect)}")
        failures += len(incorrect)
    if regressions:
        print(f"benchlib --compare: {regressions} bench(es) regressed "
              f"beyond {max_regression:.0%}")
    if failures:
        return 1
    print(f"benchlib --compare: {len(rows)} bench(es), no regression")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", nargs="+", metavar="BENCH_JSON",
                        help="validate written records; exit non-zero "
                             "on any correct:false")
    parser.add_argument("--compare", nargs="+", metavar="PREV_JSON",
                        help="previous run's BENCH records (files or a "
                             "directory); emit per-bench ops/sec deltas "
                             "and fail on a throughput regression")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="relative ops/sec drop that fails the gate "
                             "(default 0.30 = 30%%)")
    args = parser.parse_args()
    status = 0
    if args.check:
        status = check(args.check)
    if args.compare:
        if not args.check:
            parser.error("--compare needs --check CURRENT... for the "
                         "current records")
        status = max(status, compare(args.check, args.compare,
                                     args.max_regression))
    if not args.check and not args.compare:
        parser.error("nothing to do (use --check [--compare])")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
