"""Streaming document plane: bounded memory on documents that never
fit in RAM comfortably.

The streamer (``repro.engine.stream``) drives σd straight from parser
events: star frames emit head/instances/tail live and only the
enclosing fragment is ever buffered.  This bench machine-checks the
constant-memory claim — it synthesises a large conforming document
*incrementally* to a temp file (the document never exists in memory),
streams it through the school σ1 mapping into a byte-counting sink,
and asserts the process RSS high-water delta stays a small fraction of
the document size.  Byte-identity against the buffered path is checked
at a size where buffering is cheap.
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from repro.core.instmap import InstMap
from repro.engine.stream import StreamStats, iter_mapped
from repro.workloads.library import school_example
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

#: One source fragment of the school classes schema (~120 bytes); the
#: big document is ``<db>`` + N of these + ``</db>``, written in chunks.
_FRAGMENT = ("<class><cno>CS{index}</cno><title>Course {index}</title>"
             "<type><project>term project {index}</project></type></class>")


def _write_document(path: str, target_bytes: int) -> int:
    """Incrementally write a conforming document of ``>= target_bytes``;
    returns the byte count.  Only one small chunk is in memory at once."""
    written = 0
    with open(path, "w") as handle:
        written += handle.write("<db>")
        index = 0
        while written < target_bytes:
            chunk = "".join(_FRAGMENT.format(index=i)
                            for i in range(index, index + 512))
            index += 512
            written += handle.write(chunk)
        written += handle.write("</db>")
    return written


def _rss_peak_kb() -> int:
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _stream_document(instmap: InstMap, path: str) -> tuple[StreamStats, float]:
    stats = StreamStats()
    started = time.perf_counter()
    for _chunk in iter_mapped(instmap, path=path, stats=stats):
        pass  # byte-counting sink: chars_out accumulates in stats
    return stats, time.perf_counter() - started


def _identity_check(instmap: InstMap, n_fragments: int) -> bool:
    """Streamed output == buffered output, at bufferable scale."""
    text = ("<db>" + "".join(_FRAGMENT.format(index=i)
                             for i in range(n_fragments)) + "</db>")
    streamed = "".join(iter_mapped(instmap, text=text))
    buffered = to_string(instmap.apply(parse_xml(text)).tree)
    return streamed == buffered


@pytest.mark.parametrize("n_fragments", [1, 37])
def test_stream_matches_buffered(n_fragments):
    instmap = InstMap(school_example().sigma1)
    assert _identity_check(instmap, n_fragments)


def main() -> int:
    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    # Smoke keeps CI quick; full mode is the actual 50MB-class claim.
    target_bytes = 200_000 if args.smoke else 50_000_000

    instmap = InstMap(school_example().sigma1)
    identical = _identity_check(instmap, 400)

    with tempfile.TemporaryDirectory(prefix="repro-bench-stream-") as tmp:
        doc_path = os.path.join(tmp, "big.xml")
        doc_bytes = _write_document(doc_path, target_bytes)
        rss_before_kb = _rss_peak_kb()
        stats, wall = _stream_document(instmap, doc_path)
        rss_after_kb = _rss_peak_kb()

    delta_kb = rss_after_kb - rss_before_kb
    # The constant-memory gate: the streamer may grow the high-water
    # mark by at most a quarter of the document it mapped (in practice
    # the delta is near zero — memory is bounded by one fragment).
    bounded = delta_kb * 1024 < 0.25 * doc_bytes
    print(f"[stream] doc={doc_bytes} bytes -> {stats.chars_out} chars "
          f"in {wall:.2f}s; frames={stats.frames_streamed} "
          f"buffered_fragments={stats.fragments_buffered} "
          f"rss_delta={delta_kb}KiB (bound {0.25 * doc_bytes / 1024:.0f}KiB)")

    result = benchlib.record(
        "streaming", args,
        ops_per_sec=doc_bytes / wall if wall > 0 else 0.0,  # input bytes/s
        wall_time_s=wall,
        correct=(identical and bounded and not stats.whole_document
                 and stats.frames_streamed > 0),
        extra={"doc_bytes": doc_bytes,
               "chars_out": stats.chars_out,
               "frames_streamed": stats.frames_streamed,
               "fragments_buffered": stats.fragments_buffered,
               "rss_before_kb": rss_before_kb,
               "rss_delta_kb": delta_kb,
               "identical_at_small_scale": identical})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
