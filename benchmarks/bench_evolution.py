"""E20 — schema-evolution service: verdicts/sec and verdict identity.

The evolution scenario behind ``repro evolve`` and ``POST /v1/evolve``:
a schema version bump arrives while a stored query workload keeps
serving, and every query needs a compatibility verdict — still-valid,
translatable (with the re-translated query) or broken (with a
structured reason).  This benchmark times the verdict pipeline over
growing workloads and asserts its one hard contract on every run
(including ``--smoke``):

* **correctness** — the curated mutation cases
  (:func:`repro.workloads.evolution.evolution_cases`) come back with
  exactly their known-good verdicts; the full verdict report is
  deterministic (two direct runs are byte-identical under sorted-key
  JSON); and the served report — single daemon and, where ``fork``
  exists, the pre-fork fleet — is byte-identical to the direct
  ``Engine.evolve`` payload;
* **throughput** — verdicts/sec over the workload ladder; the
  headline ``ops_per_sec`` is the largest workload's, the ladder
  lands in ``extra.scaling``.

Run standalone for the table::

    PYTHONPATH=src python benchmarks/bench_evolution.py

CI smoke (small workload, correctness asserted)::

    PYTHONPATH=src python benchmarks/bench_evolution.py --smoke --json BENCH_evolution.json
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import benchlib

from repro.engine import Engine, pack_store
from repro.serve import FleetServer, ReproServer, ServeClient
from repro.workloads.evolution import evolution_cases, scaled_case

SMOKE = {"workload_sizes": [4, 8], "fleet_workers": 2}
FULL = {"workload_sizes": [10, 25, 50], "fleet_workers": 2}

#: How long to wait for the forked fleet to answer /healthz.
_FLEET_READY_SECONDS = 30.0


def check_curated(engine: Engine, errors: list) -> int:
    """Every curated mutation case must yield exactly its known-good
    verdicts; returns the number of verdicts checked."""
    checked = 0
    for case in evolution_cases():
        report = engine.evolve(case.old, case.new, case.queries,
                               embedding=case.embedding)
        for verdict in report.verdicts:
            checked += 1
            expected = case.expected[verdict.query]
            if verdict.verdict != expected:
                errors.append(
                    f"{case.name}: {verdict.query!r} came back "
                    f"{verdict.verdict} (reason {verdict.reason}), "
                    f"expected {expected}")
    return checked


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def build_store(tmp: Path, case) -> Path:
    """A store carrying the case's schemas + embedding, packed for the
    fleet — the daemon warm-starts from it and resolves everything by
    fingerprint, so the served evolve exercises stored artifacts."""
    store_path = tmp / "store"
    engine = Engine()
    engine.compile_embedding(case.embedding, ensure_valid=True)
    engine.save_store(store_path)
    pack_store(store_path)
    return store_path


def check_served_identity(case, direct_payload: str,
                          errors: list) -> dict:
    """The byte-identity contract: the daemon's /v1/evolve response —
    and the fleet's, where fork exists — equals the direct engine
    payload under sorted-key JSON."""
    fingerprint = case.embedding.fingerprint()
    old_fp = case.old.fingerprint()
    new_fp = case.new.fingerprint()
    detail = {"daemon": False, "fleet": None}
    with tempfile.TemporaryDirectory() as tmp:
        store_path = build_store(Path(tmp), case)
        with ReproServer(store=store_path, port=0) as server:
            client = ServeClient.for_server(server)
            served = client.evolve(old_fp, new_fp,
                                   queries=list(case.queries),
                                   embedding=fingerprint)
            client.close()
            if canonical(served.raw) != direct_payload:
                errors.append("daemon /v1/evolve diverged from the "
                              "direct Engine.evolve payload")
            else:
                detail["daemon"] = True
        if hasattr(os, "fork"):
            detail["fleet"] = False
            with FleetServer(store_path, workers=SMOKE["fleet_workers"],
                             port=0) as fleet:
                client = ServeClient(fleet.host, fleet.port, timeout=5.0)
                deadline = time.monotonic() + _FLEET_READY_SECONDS
                while True:
                    try:
                        client.healthz()
                        break
                    except OSError:
                        if time.monotonic() >= deadline:
                            errors.append("fleet never came up")
                            break
                        time.sleep(0.05)
                served = client.evolve(old_fp, new_fp,
                                       queries=list(case.queries),
                                       embedding=fingerprint)
                client.close()
                if canonical(served.raw) != direct_payload:
                    errors.append("fleet /v1/evolve diverged from the "
                                  "direct Engine.evolve payload")
                else:
                    detail["fleet"] = True
    return detail


def run_benchmark(params: dict):
    """One ladder over workload sizes; returns the benchlib tuple."""
    errors: list[str] = []
    engine = Engine()
    curated_verdicts = check_curated(engine, errors)

    ladder = []
    headline_ops = 0.0
    total_wall = 0.0
    identity = None
    for size in params["workload_sizes"]:
        case = scaled_case(size, seed=5)
        # Two direct runs must agree byte-for-byte (determinism), and
        # the second is the timed one (caches warm — the serving
        # steady state this subsystem exists for).
        first = engine.evolve(case.old, case.new, case.queries,
                              embedding=case.embedding)
        started = time.perf_counter()
        second = engine.evolve(case.old, case.new, case.queries,
                               embedding=case.embedding)
        wall = time.perf_counter() - started
        total_wall += wall
        direct = canonical(first.to_payload())
        if direct != canonical(second.to_payload()):
            errors.append(f"size={size}: verdict report is not "
                          "deterministic across runs")
        verdicts = len(second.verdicts)
        ops = verdicts / wall if wall > 0 else 0.0
        headline_ops = ops
        ladder.append({"queries": size, "verdicts": verdicts,
                       "counts": second.counts(),
                       "verdicts_per_sec": round(ops, 2),
                       "seconds": round(wall, 4)})
        if identity is None:
            # Serve identity is checked once, on the smallest ladder
            # rung — the payload contract does not change with size.
            identity = check_served_identity(case, direct, errors)

    extra = {"curated_verdicts": curated_verdicts,
             "scaling": ladder,
             "served_identity": identity,
             "errors": errors[:10]}
    return headline_ops, total_wall, not errors, extra


def main() -> int:
    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    params = SMOKE if args.smoke else FULL
    ops, wall, correct, extra = benchlib.run_repeats(
        lambda: run_benchmark(params), args.repeats)
    result = benchlib.record("evolution", args, ops_per_sec=ops,
                             wall_time_s=wall, correct=correct,
                             extra=extra)
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
