"""E16 — Engine throughput: compile once vs. recompile per call.

The serving scenario behind the engine layer: one embedding, many
documents to map and many queries to translate.  The *per-call* path is
what the seed's one-shot API did — rebuild the InstMap (validate σ,
re-derive mindef, re-classify every edge path) for every document and a
fresh Translator for every query.  The *engine* path compiles the
embedding once per content fingerprint and serves everything else from
the compiled artifacts and the translation LRU.

The acceptance bar is a ≥5× throughput improvement on 100 documents /
100 queries against one embedding.  Run standalone for the table::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

or through pytest (the assertion uses a relaxed 5× bound)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py -q
"""

from __future__ import annotations

import time

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.instmap import InstMap
from repro.core.translate import Translator
from repro.dtd.generate import InstanceGenerator
from repro.engine import Engine
from repro.workloads.noise import expand_schema
from repro.workloads.queries import random_queries
from repro.workloads.synthetic import random_dtd
from repro.xtree.nodes import tree_equal

DOCUMENTS = 100
QUERIES = 100
#: Distinct query templates; the serving mix cycles through them the
#: way a production workload repeats a bounded set of query shapes.
DISTINCT_QUERIES = 10


def _workload():
    """A serving-shaped workload: a 60-type source expanded into a
    ~250-type target (so per-call σ validation / mindef / path
    classification is substantial) and many small request documents
    (so the per-request work itself is not)."""
    expansion = expand_schema(random_dtd(60, seed=7), seed=3)
    sigma = expansion.embedding
    documents = [
        InstanceGenerator(sigma.source, seed=seed, max_depth=5,
                          star_mean=0.6).generate()
        for seed in range(DOCUMENTS)]
    distinct = random_queries(sigma.source, DISTINCT_QUERIES, seed=11)
    queries = [distinct[index % DISTINCT_QUERIES]
               for index in range(QUERIES)]
    return sigma, documents, queries


def _time(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def run_throughput():
    """Time per-call vs. engine serving; returns a row per workload."""
    sigma, documents, queries = _workload()
    engine = Engine()

    # -- mapping: σd over 100 documents ---------------------------------
    def map_per_call():
        for document in documents:
            InstMap(sigma).apply(document)

    def map_engine():
        for document in documents:
            engine.apply_embedding(sigma, document)

    # -- translation: Tr over 100 queries --------------------------------
    def translate_per_call():
        for query in queries:
            Translator(sigma).translate(query)

    def translate_engine():
        for query in queries:
            engine.translate_query(sigma, query)

    # Warm the engine's compiled artifact outside the timed region the
    # same way a server compiles at deployment; the per-call numbers
    # have no equivalent warm-up to pay.
    engine.compile_embedding(sigma).ensure_valid()

    rows = []
    for name, per_call, engined, count in [
            ("map", map_per_call, map_engine, DOCUMENTS),
            ("translate", translate_per_call, translate_engine, QUERIES)]:
        cold = _time(per_call)
        warm = _time(engined)
        rows.append({
            "workload": name,
            "calls": count,
            "per-call s": round(cold, 4),
            "engine s": round(warm, 4),
            "speedup": round(cold / warm, 1) if warm > 0 else float("inf"),
        })
    return rows, engine


def test_engine_throughput_speedup():
    """Acceptance: ≥5× for repeated mapping AND translation.

    Best of two runs — wall-clock ratios on a loaded CI box jitter,
    and one clean run demonstrating the speedup is the acceptance
    criterion.
    """
    best: dict[str, float] = {}
    for _attempt in range(2):
        rows, _engine = run_throughput()
        for row in rows:
            best[row["workload"]] = max(best.get(row["workload"], 0.0),
                                        row["speedup"])
        if all(value >= 5.0 for value in best.values()):
            break
    assert best["map"] >= 5.0, best
    assert best["translate"] >= 5.0, best


def test_engine_results_identical_to_per_call():
    """The speedup must not change any answer."""
    sigma, documents, queries = _workload()
    engine = Engine()
    for document in documents[:5]:
        assert tree_equal(InstMap(sigma).apply(document).tree,
                          engine.apply_embedding(sigma, document).tree)
    probe = engine.apply_embedding(sigma, documents[0]).tree
    for query in queries[:5]:
        fresh = Translator(sigma).translate(query)
        served = engine.translate_query(sigma, query)
        assert evaluate_anfa_set(served, probe) == \
            evaluate_anfa_set(fresh, probe)


def _identity_check() -> bool:
    """The speedup must not change any answer (sampled)."""
    sigma, documents, queries = _workload()
    engine = Engine()
    for document in documents[:3]:
        if not tree_equal(InstMap(sigma).apply(document).tree,
                          engine.apply_embedding(sigma, document).tree):
            return False
    probe = engine.apply_embedding(sigma, documents[0]).tree
    for query in queries[:3]:
        fresh = Translator(sigma).translate(query)
        served = engine.translate_query(sigma, query)
        if evaluate_anfa_set(served, probe) != \
                evaluate_anfa_set(fresh, probe):
            return False
    return True


def main() -> int:
    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    rows, engine = run_throughput()
    width = max(len(row["workload"]) for row in rows)
    print(f"[E16] engine throughput, {DOCUMENTS} documents / "
          f"{QUERIES} queries, one embedding (expanded 60-type schema)")
    header = (f"{'workload':<{width}}  {'calls':>5}  {'per-call s':>10}  "
              f"{'engine s':>9}  {'speedup':>7}")
    print(header)
    print("-" * len(header))
    perf_ok = True
    engine_wall = 0.0
    engine_calls = 0
    for row in rows:
        print(f"{row['workload']:<{width}}  {row['calls']:>5}  "
              f"{row['per-call s']:>10.4f}  {row['engine s']:>9.4f}  "
              f"{row['speedup']:>6.1f}x")
        perf_ok = perf_ok and row["speedup"] >= 5.0
        engine_wall += row["engine s"]
        engine_calls += row["calls"]
    print()
    print(engine.describe_stats())
    print()
    print("PASS (>=5x on both workloads)" if perf_ok else "FAIL (<5x)")
    correct = _identity_check()
    result = benchlib.record(
        "engine_throughput", args,
        ops_per_sec=engine_calls / engine_wall if engine_wall > 0 else 0.0,
        wall_time_s=engine_wall, correct=correct,
        extra={"rows": rows,
               "speedup_ok": perf_ok,
               "speedups": {row["workload"]: row["speedup"]
                            for row in rows}})
    code = benchlib.finish(result, args)
    if code:
        return code
    # Full (non-smoke) runs keep the historical ≥5× wall-clock gate;
    # --smoke gates on correctness only, so CI stays deterministic.
    return 0 if args.smoke or perf_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
