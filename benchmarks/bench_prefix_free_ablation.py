"""E15 — heuristic internals: the prefix-free DFS vs blind enumeration.

Section 5.2 solves the prefix-free path problem with a DFS variant that
does not mark targets done.  The ablation compares that assignment
procedure against picking paths independently and rejecting on
conflict (the naive alternative), on productions with many siblings.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.schema import load_schema
from repro.experiments.report import format_table
from repro.matching.prefix_free import (
    PathKind,
    PathRequest,
    enumerate_paths,
    prefix_free_assign,
)


def _wide_target(width: int):
    """A target where siblings genuinely compete: ``width`` identical
    ``w`` children (Fig. 3(c)-style repetition), so every request's
    first candidate collides and position qualifiers must be spread."""
    w_list = ", ".join("w" for _ in range(width))
    return load_schema("\n".join([
        f"x -> {w_list}",
        "w -> y, z",
        "y -> str",
        "z -> str",
    ]))


def _requests(width: int):
    # One y-request and one z-request per repeated w slot: the
    # assignments must pick pairwise-distinct position qualifiers.
    out = []
    for _ in range(width):
        out.append(PathRequest(PathKind.AND, "y"))
        out.append(PathRequest(PathKind.AND, "z"))
    return out


def _naive_product_assign(dtd, start, requests, cap=200_000):
    """Blind alternative: try every combination of candidate paths."""
    candidate_lists = [enumerate_paths(dtd, start, request)
                       for request in requests]
    tried = 0
    for combo in itertools.product(*candidate_lists):
        tried += 1
        if tried > cap:
            return None, tried
        ok = True
        for i, p1 in enumerate(combo):
            for p2 in combo[i + 1:]:
                if p1.is_prefix_of(p2) or p2.is_prefix_of(p1):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return list(combo), tried
    return None, tried


@pytest.mark.table
def test_table_e15_ablation(capsys):
    rows = []
    for width in (2, 4, 6):
        dtd = _wide_target(width)
        requests = _requests(width)
        started = time.perf_counter()
        assigned = prefix_free_assign(dtd, "x", requests)
        dfs_time = time.perf_counter() - started
        started = time.perf_counter()
        _naive, tried = _naive_product_assign(dtd, "x", requests)
        naive_time = time.perf_counter() - started
        rows.append({
            "siblings": len(requests),
            "dfs-ms": round(1e3 * dfs_time, 3),
            "naive-ms": round(1e3 * naive_time, 3),
            "naive-combos": tried,
            "solved": assigned is not None,
        })
    with capsys.disabled():
        print()
        print(format_table(rows, title="[E15] prefix-free assignment: "
                                       "DFS vs product enumeration"))
    assert all(row["solved"] for row in rows)


@pytest.mark.parametrize("width", [4, 8])
def test_bench_prefix_free_dfs(benchmark, width):
    dtd = _wide_target(width)
    requests = _requests(width)
    result = benchmark(lambda: prefix_free_assign(dtd, "x", requests))
    assert result is not None


def main() -> int:
    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    widths = (2, 4) if args.smoke else (2, 4, 6)
    rows = []
    assigned_requests = 0
    dfs_wall = 0.0
    for width in widths:
        dtd = _wide_target(width)
        requests = _requests(width)
        started = time.perf_counter()
        assigned = prefix_free_assign(dtd, "x", requests)
        dfs_time = time.perf_counter() - started
        dfs_wall += dfs_time
        started = time.perf_counter()
        _naive, tried = _naive_product_assign(dtd, "x", requests)
        naive_time = time.perf_counter() - started
        assigned_requests += len(requests)
        rows.append({
            "siblings": len(requests),
            "dfs-ms": round(1e3 * dfs_time, 3),
            "naive-ms": round(1e3 * naive_time, 3),
            "naive-combos": tried,
            "solved": assigned is not None,
        })
    print(format_table(rows, title="[E15] prefix-free assignment: "
                                   "DFS vs product enumeration"))
    result = benchlib.record(
        "prefix_free_ablation", args,
        ops_per_sec=assigned_requests / dfs_wall if dfs_wall > 0 else 0.0,
        wall_time_s=dfs_wall,
        correct=all(row["solved"] for row in rows),
        extra={"rows": rows})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
