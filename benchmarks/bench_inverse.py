"""E14 — inverse cost: structural σd⁻¹ vs the query-driven proof
algorithm (Theorems 3.3 / 4.3(a): at most quadratic).
"""

from __future__ import annotations

import pytest

from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.core.inverse_queries import invert_via_queries
from repro.dtd.generate import InstanceGenerator
from repro.experiments.complexity import run_inverse_growth
from repro.experiments.report import format_table


@pytest.mark.table
def test_table_e14_inverse_growth(capsys):
    rows = run_inverse_growth(sizes=(100, 400, 1600), seed=5,
                              include_query_driven=True)
    with capsys.disabled():
        print()
        print(format_table(rows,
                           title="[E14] inverse: structural vs "
                                 "query-driven (Thm 3.3 proof algorithm)"))
    # The structural inverse dominates the query-driven one.
    for row in rows:
        assert row["structural-sec"] <= row["query-driven-sec"] + 0.001


def _image(school, star_mean):
    generator = InstanceGenerator(school.classes, seed=2, max_depth=12,
                                  star_mean=star_mean)
    instance = generator.generate()
    return instance, InstMap(school.sigma1).apply(instance)


@pytest.mark.parametrize("star_mean", [2.0, 8.0])
def test_bench_structural_inverse(benchmark, school, star_mean):
    _instance, mapped = _image(school, star_mean)
    benchmark(lambda: invert(school.sigma1, mapped.tree))


def test_bench_query_driven_inverse(benchmark, school):
    _instance, mapped = _image(school, 2.0)
    benchmark(lambda: invert_via_queries(school.sigma1, mapped.tree))


def main() -> int:
    import benchlib

    from repro.workloads.library import school_example
    from repro.xtree.nodes import tree_equal, tree_size

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    sizes = (100, 400) if args.smoke else (100, 400, 1600)
    rows = run_inverse_growth(sizes=sizes, seed=5,
                              include_query_driven=True)
    print(format_table(rows, title="[E14] inverse: structural vs "
                                   "query-driven"))
    # Semantic correctness: both inverses reconstruct the source
    # exactly (wall-clock dominance is reported, never gated on).
    school = school_example()
    instance, mapped = _image(school, 4.0)
    structural_ok = tree_equal(invert(school.sigma1, mapped.tree),
                               instance)
    query_driven_ok = tree_equal(
        invert_via_queries(school.sigma1, mapped.tree), instance)
    nodes = sum(row["|T2|"] for row in rows)
    wall = sum(row["structural-sec"] for row in rows)
    result = benchlib.record(
        "inverse", args,
        ops_per_sec=nodes / wall if wall > 0 else 0.0,  # nodes inverted/s
        wall_time_s=wall,
        correct=structural_ok and query_driven_ok,
        extra={"roundtrip_size": tree_size(mapped.tree), "rows": rows})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
