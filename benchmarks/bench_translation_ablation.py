"""E8 — ablation: schema-directed Tr vs the naive substitution (Fig. 7).

Counts, over a query workload, how often the naive edge-substitution
strategy returns a *wrong* answer while the schema-directed translation
stays exact — quantifying the Fig. 7 phenomenon beyond the single
counterexample.
"""

from __future__ import annotations

import pytest

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.instmap import InstMap
from repro.core.naive import naive_translate
from repro.core.translate import Translator
from repro.dtd.generate import random_instance
from repro.experiments.report import format_table
from repro.workloads.noise import expand_schema
from repro.workloads.queries import random_queries
from repro.workloads.synthetic import random_dtd
from repro.xpath.evaluator import evaluate_set


def _compare(embedding, queries, instance):
    mapped = InstMap(embedding).apply(instance)
    translator = Translator(embedding)
    naive_wrong = 0
    directed_wrong = 0
    for query in queries:
        source_result = evaluate_set(query, instance)
        anfa = translator.translate(query)
        directed = evaluate_anfa_set(anfa, mapped.tree).map_ids(mapped.idM)
        if (directed.ids != source_result.ids
                or directed.strings != source_result.strings):
            directed_wrong += 1
        naive_query = naive_translate(embedding, query)
        naive = evaluate_set(naive_query, mapped.tree)
        mappable = all(i in mapped.idM for i in naive.ids)
        if not mappable:
            naive_wrong += 1
            continue
        naive_mapped = naive.map_ids(mapped.idM)
        if (naive_mapped.ids != source_result.ids
                or naive_mapped.strings != source_result.strings):
            naive_wrong += 1
    return naive_wrong, directed_wrong


def _fig7_family(width: int):
    """Fig. 7 generalised: ``width`` sibling types share the child
    label ``C``; in the source only ``A1`` has a ``C`` child, in the
    target *every* sibling requires one (mindef padding).  λ is the
    identity and every path a single edge — the naive strategy's best
    case, still wrong."""
    from repro.core.embedding import build_embedding
    from repro.schema import load_schema

    names = [f"A{i}" for i in range(1, width + 1)]
    source_lines = [f"r -> {', '.join(names)}", "A1 -> C", "C -> eps"]
    source_lines += [f"{n} -> eps" for n in names[1:]]
    target_lines = [f"r -> {', '.join(names)}", "C -> eps"]
    target_lines += [f"{n} -> C" for n in names]
    source = load_schema("\n".join(source_lines), name="fig7-src")
    target = load_schema("\n".join(target_lines), name="fig7-tgt")
    lam = {t: t for t in source.types}
    paths = {("r", n): n for n in names}
    paths[("A1", "C")] = "C"
    embedding = build_embedding(source, target, lam, paths)
    embedding.check()
    return embedding


@pytest.mark.table
def test_table_e8_naive_vs_directed(capsys):
    from repro.xpath.parser import parse_xr
    from repro.xtree.parser import parse_xml

    rows = []
    for width in (2, 4, 8):
        embedding = _fig7_family(width)
        names = [f"A{i}" for i in range(1, width + 1)]
        body = "<A1><C/></A1>" + "".join(f"<{n}/>" for n in names[1:])
        instance = parse_xml(f"<r>{body}</r>")
        queries = [parse_xr(f"({' | '.join(names + ['C'])})*"),
                   parse_xr("//C")]
        queries += [parse_xr(f"{n}/C") for n in names]
        naive_wrong, directed_wrong = _compare(embedding, queries, instance)
        rows.append({
            "shared-label-width": width,
            "queries": len(queries),
            "naive-wrong": naive_wrong,
            "schema-directed-wrong": directed_wrong,
        })
    with capsys.disabled():
        print()
        print(format_table(rows, title="[E8] Fig.7 ablation: naive edge "
                                       "substitution vs schema-directed Tr"))
    assert all(row["schema-directed-wrong"] == 0 for row in rows)
    # The naive strategy returns padded nodes for the star/descendant
    # queries and for every Ai/C with i > 1.
    for row in rows:
        assert row["naive-wrong"] >= row["shared-label-width"]


@pytest.mark.table
def test_table_e8_random_workloads(capsys):
    """Sanity companion: on injective-λ expansion workloads the naive
    strategy coincidentally agrees — the hazard needs shared labels or
    padding-visible types, which is exactly the Fig. 7 point."""
    rows = []
    for seed in (3, 7, 11):
        source = random_dtd(14, seed=seed, recursive_p=0.2)
        expansion = expand_schema(source, seed=seed + 1)
        queries = random_queries(source, 20, seed=seed + 2, max_steps=6)
        instance = random_instance(source, seed=seed + 3, max_depth=7)
        naive_wrong, directed_wrong = _compare(expansion.embedding,
                                               queries, instance)
        rows.append({
            "schema-seed": seed,
            "queries": len(queries),
            "naive-wrong": naive_wrong,
            "schema-directed-wrong": directed_wrong,
        })
    with capsys.disabled():
        print()
        print(format_table(rows, title="[E8b] naive substitution on "
                                       "injective-λ workloads (benign case)"))
    assert all(row["schema-directed-wrong"] == 0 for row in rows)


def test_bench_naive_translation(benchmark, mid_expansion):
    queries = random_queries(mid_expansion.source, 10, seed=5)
    benchmark(lambda: [naive_translate(mid_expansion.embedding, q)
                       for q in queries])


def test_bench_schema_directed_translation(benchmark, mid_expansion):
    queries = random_queries(mid_expansion.source, 10, seed=5)

    def run():
        translator = Translator(mid_expansion.embedding)
        return [translator.translate(q) for q in queries]

    benchmark(run)


def main() -> int:
    import time

    import benchlib

    from repro.xpath.parser import parse_xr
    from repro.xtree.parser import parse_xml

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    widths = (2, 4) if args.smoke else (2, 4, 8)
    rows = []
    compared = 0
    started = time.perf_counter()
    for width in widths:
        embedding = _fig7_family(width)
        names = [f"A{i}" for i in range(1, width + 1)]
        body = "<A1><C/></A1>" + "".join(f"<{n}/>" for n in names[1:])
        instance = parse_xml(f"<r>{body}</r>")
        queries = [parse_xr(f"({' | '.join(names + ['C'])})*"),
                   parse_xr("//C")]
        queries += [parse_xr(f"{n}/C") for n in names]
        naive_wrong, directed_wrong = _compare(embedding, queries,
                                               instance)
        compared += len(queries)
        rows.append({
            "shared-label-width": width,
            "queries": len(queries),
            "naive-wrong": naive_wrong,
            "schema-directed-wrong": directed_wrong,
        })
    wall = time.perf_counter() - started
    print(format_table(rows, title="[E8] Fig.7 ablation: naive edge "
                                   "substitution vs schema-directed Tr"))
    correct = (all(row["schema-directed-wrong"] == 0 for row in rows)
               and all(row["naive-wrong"] >= row["shared-label-width"]
                       for row in rows))
    result = benchlib.record(
        "translation_ablation", args,
        ops_per_sec=compared / wall if wall > 0 else 0.0,
        wall_time_s=wall, correct=correct, extra={"rows": rows})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
