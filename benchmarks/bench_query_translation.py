"""E7/E14 — query translation: ANFA sizes vs. the Theorem 4.3 bound.

``|Tr(Q)| = O(|Q|·|σ|·|S1|)``, computed in ``O(|Q|²·|σ|·|S1|²)``.
The table reports measured automaton sizes against the bound; the
benchmark times translation of the Example 4.8 query and of larger
random queries.
"""

from __future__ import annotations

import pytest

from repro.core.translate import Translator
from repro.experiments.complexity import run_translation_growth
from repro.experiments.report import format_table
from repro.workloads.queries import random_queries
from repro.xpath.parser import parse_xr


@pytest.mark.table
def test_table_e14_translation_growth(capsys):
    rows = run_translation_growth(counts=(6, 12, 24), seed=3, max_steps=8)
    with capsys.disabled():
        print()
        print(format_table(rows,
                           title="[E14] |Tr(Q)| vs the O(|Q||σ||S1|) bound"))
    assert all(row["within-bound"] for row in rows)


def test_bench_translate_example_4_8(benchmark, school):
    query = parse_xr(
        "class[cno/text()='CS331']/(type/regular/prereq/class)*")

    def run():
        return Translator(school.sigma1).translate(query)

    benchmark(run)


def test_bench_translate_random_batch(benchmark, school):
    queries = random_queries(school.classes, 10, seed=9, max_steps=7)

    def run():
        translator = Translator(school.sigma1)
        return [translator.translate(query) for query in queries]

    benchmark(run)


def test_bench_translate_memoised(benchmark, school):
    """Re-translation with a warm memo (the DP of Theorem 4.3)."""
    translator = Translator(school.sigma1)
    query = parse_xr("(class/type/regular/prereq/class)*/cno/text()")
    translator.translate(query)
    benchmark(lambda: translator.translate(query))


def main() -> int:
    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    counts = (6, 12) if args.smoke else (6, 12, 24)
    rows = run_translation_growth(counts=counts, seed=3, max_steps=8)
    print(format_table(rows,
                       title="[E14] |Tr(Q)| vs the O(|Q||σ||S1|) bound"))
    wall = sum(row["trans-ms"] for row in rows) / 1e3
    result = benchlib.record(
        "query_translation", args,
        ops_per_sec=len(rows) / wall if wall > 0 else 0.0,
        wall_time_s=wall,
        correct=all(row["within-bound"] for row in rows),
        extra={"translations": len(rows),
               "max_anfa_size": max(row["anfa-size"] for row in rows)})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
