"""E7/E14 — query translation: ANFA sizes vs. the Theorem 4.3 bound.

``|Tr(Q)| = O(|Q|·|σ|·|S1|)``, computed in ``O(|Q|²·|σ|·|S1|²)``.
The table reports measured automaton sizes against the bound; the
benchmark times translation of the Example 4.8 query and of larger
random queries, plus a **depth ladder** of deep ``B1/…/Bd`` chains:
relocation-free composition (:mod:`repro.anfa.compose`) makes chain
translation linear in ``d``, so per-level cost must stay flat from
``d=32`` to ``d=512`` (``correct`` gates on it).
"""

from __future__ import annotations

import time

import pytest

from repro.core.embedding import build_embedding
from repro.core.translate import Translator
from repro.experiments.complexity import run_translation_growth
from repro.experiments.report import format_table
from repro.schema import load_schema
from repro.workloads.queries import random_queries
from repro.xpath.parser import parse_xr


@pytest.mark.table
def test_table_e14_translation_growth(capsys):
    rows = run_translation_growth(counts=(6, 12, 24), seed=3, max_steps=8)
    with capsys.disabled():
        print()
        print(format_table(rows,
                           title="[E14] |Tr(Q)| vs the O(|Q||σ||S1|) bound"))
    assert all(row["within-bound"] for row in rows)


def test_bench_translate_example_4_8(benchmark, school):
    query = parse_xr(
        "class[cno/text()='CS331']/(type/regular/prereq/class)*")

    def run():
        return Translator(school.sigma1).translate(query)

    benchmark(run)


def test_bench_translate_random_batch(benchmark, school):
    queries = random_queries(school.classes, 10, seed=9, max_steps=7)

    def run():
        translator = Translator(school.sigma1)
        return [translator.translate(query) for query in queries]

    benchmark(run)


def test_bench_translate_memoised(benchmark, school):
    """Re-translation with a warm memo (the DP of Theorem 4.3)."""
    translator = Translator(school.sigma1)
    query = parse_xr("(class/type/regular/prereq/class)*/cno/text()")
    translator.translate(query)
    benchmark(lambda: translator.translate(query))


def _chain_embedding():
    """The bench_fastpath recursive chain pair: every level of a
    ``node/…/node`` query translates through one star edge."""
    source = load_schema("node -> node*", format="compact",
                         name="chain-src")
    target = load_schema("wrap -> inner\ninner -> wrap*",
                         format="compact", root="wrap",
                         name="chain-tgt")
    return build_embedding(source, target, {"node": "wrap"},
                           {("node", "node"): "inner/wrap"})


def run_depth_ladder(depths: tuple[int, ...]) -> tuple[list[dict], bool]:
    """Translate ``node/…/node`` chains of each depth from a cold
    translator; ``linear`` holds iff per-level cost at the deepest
    rung stays within 4x of the shallowest rung's (the old
    copy-on-compose build was quadratic: per-level cost grew ~d)."""
    sigma = _chain_embedding()
    rows: list[dict] = []
    for depth in depths:
        query = parse_xr("/".join(["node"] * depth))
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            anfa = Translator(sigma, prime=False).translate(query)
            best = min(best, time.perf_counter() - started)
        rows.append({"depth": depth, "trans-ms": round(best * 1e3, 3),
                     "us-per-level": round(best * 1e6 / depth, 3),
                     "anfa-states": len(anfa.states()),
                     "fail": anfa.is_fail()})
    first, last = rows[0], rows[-1]
    linear = (not any(row["fail"] for row in rows)
              and last["us-per-level"] <= 4 * max(first["us-per-level"],
                                                 0.001)
              # states are exactly affine in depth for this chain pair
              # (4d - 1): cross-multiplying cancels the slope without
              # hardcoding it, leaving the intercept correction.
              and last["anfa-states"] * first["depth"]
              == first["anfa-states"] * last["depth"]
              + (last["depth"] - first["depth"]))
    for row in rows:
        row["linear"] = linear
    return rows, linear


def main() -> int:
    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    counts = (6, 12) if args.smoke else (6, 12, 24)
    depths = (8, 32) if args.smoke else (8, 32, 128, 512)

    def run_once():
        rows = run_translation_growth(counts=counts, seed=3, max_steps=8)
        ladder, linear = run_depth_ladder(depths)
        wall = (sum(row["trans-ms"] for row in rows)
                + sum(row["trans-ms"] for row in ladder)) / 1e3
        correct = all(row["within-bound"] for row in rows) and linear
        extra = {"translations": len(rows),
                 "max_anfa_size": max(row["anfa-size"] for row in rows),
                 "depth_ladder": ladder}
        ops = (len(rows) + len(ladder)) / wall if wall > 0 else 0.0
        return ops, wall, correct, extra, rows, ladder

    ops, wall, correct, extra, rows, ladder = run_once()
    print(format_table(rows,
                       title="[E14] |Tr(Q)| vs the O(|Q||σ||S1|) bound"))
    print(format_table(ladder,
                       title="[E14b] deep-chain translation depth ladder"))
    if args.repeats > 1:
        ops, wall, correct, extra = benchlib.run_repeats(
            lambda: run_once()[:4], repeats=args.repeats)
    result = benchlib.record(
        "query_translation", args,
        ops_per_sec=ops,
        wall_time_s=wall,
        correct=correct,
        extra=extra)
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
