"""Benchmark fixtures: print tables once per session, time with
pytest-benchmark.  Run with ``pytest benchmarks/ --benchmark-only``."""

from __future__ import annotations

import pytest

from repro.workloads.library import school_example
from repro.workloads.noise import expand_schema
from repro.workloads.synthetic import random_dtd


def pytest_configure(config):
    config.addinivalue_line("markers",
                            "table: prints a paper-style results table")


@pytest.fixture(scope="session")
def school():
    return school_example()


@pytest.fixture(scope="session")
def mid_expansion():
    return expand_schema(random_dtd(40, seed=7), seed=3)
