"""E1 — Fig. 1 / Examples 4.2, 4.9: the school integration scenario.

Reproduces the headline qualitative claim: the school target cannot be
reached by graph similarity, while schema embedding maps both sources,
preserves information, and integrates them into one document.  Timings
cover embedding search, InstMap, and the inverse.
"""

from __future__ import annotations

import pytest

from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.core.multi import integrate
from repro.core.similarity import SimilarityMatrix
from repro.dtd.generate import random_instance
from repro.experiments.report import format_table
from repro.matching.search import find_embedding
from repro.matching.simulation import simulation_mapping
from repro.xtree.nodes import tree_equal, tree_size


@pytest.mark.table
def test_table_e1_summary(school, capsys):
    att = SimilarityMatrix.permissive()
    rows = []
    for source, sigma, tag in [(school.classes, school.sigma1, "classes(S0)"),
                               (school.students, school.sigma2,
                                "students(S1)")]:
        simulated = simulation_mapping(source, school.school) is not None
        search = find_embedding(source, school.school, att, seed=1)
        instance = random_instance(source, seed=3, max_depth=8)
        mapped = InstMap(sigma).apply(instance)
        roundtrip = tree_equal(invert(sigma, mapped.tree), instance)
        rows.append({
            "source": tag,
            "simulation": "maps" if simulated else "FAILS",
            "embedding-search": "found" if search.found else "none",
            "search-sec": round(search.seconds, 3),
            "|T1|": tree_size(instance),
            "|T2|": tree_size(mapped.tree),
            "roundtrip": roundtrip,
        })
    with capsys.disabled():
        print()
        print(format_table(rows, title="[E1] Fig.1 school scenario — "
                           "simulation baseline vs schema embedding"))
    assert all(row["simulation"] == "FAILS" for row in rows)
    assert all(row["embedding-search"] == "found" for row in rows)
    assert all(row["roundtrip"] for row in rows)


def test_bench_search_classes(benchmark, school):
    att = SimilarityMatrix.permissive()

    def run():
        result = find_embedding(school.classes, school.school, att, seed=1)
        assert result.found
        return result

    benchmark(run)


def test_bench_instmap_school(benchmark, school):
    instance = random_instance(school.classes, seed=5, max_depth=10,
                               star_mean=4.0)
    instmap = InstMap(school.sigma1)
    benchmark(lambda: instmap.apply(instance))


def test_bench_inverse_school(benchmark, school):
    instance = random_instance(school.classes, seed=5, max_depth=10,
                               star_mean=4.0)
    mapped = InstMap(school.sigma1).apply(instance)
    benchmark(lambda: invert(school.sigma1, mapped.tree))


def test_bench_integration(benchmark, school):
    classes_doc = random_instance(school.classes, seed=2, max_depth=8)
    students_doc = random_instance(school.students, seed=3)

    def run():
        result = integrate([school.sigma1, school.sigma2],
                           [classes_doc, students_doc])
        return result.tree

    benchmark(run)


def main() -> int:
    import time

    import benchlib

    from repro.workloads.library import school_example

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    school = school_example()
    att = SimilarityMatrix.permissive()
    rows = []
    operations = 0
    started = time.perf_counter()
    for source, sigma, tag in [(school.classes, school.sigma1,
                                "classes(S0)"),
                               (school.students, school.sigma2,
                                "students(S1)")]:
        simulated = simulation_mapping(source, school.school) is not None
        search = find_embedding(source, school.school, att, seed=1)
        instance = random_instance(source, seed=3, max_depth=8)
        mapped = InstMap(sigma).apply(instance)
        roundtrip = tree_equal(invert(sigma, mapped.tree), instance)
        operations += 3  # search + map + invert
        rows.append({
            "source": tag,
            "simulation": "maps" if simulated else "FAILS",
            "embedding-search": "found" if search.found else "none",
            "|T1|": tree_size(instance),
            "|T2|": tree_size(mapped.tree),
            "roundtrip": roundtrip,
        })
    wall = time.perf_counter() - started
    print(format_table(rows, title="[E1] Fig.1 school scenario"))
    correct = (all(row["simulation"] == "FAILS" for row in rows)
               and all(row["embedding-search"] == "found" for row in rows)
               and all(row["roundtrip"] for row in rows))
    result = benchlib.record(
        "fig1_school", args,
        ops_per_sec=operations / wall if wall > 0 else 0.0,
        wall_time_s=wall, correct=correct, extra={"rows": rows})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
