"""E14 — InstMap cost: linear in the document sizes (Section 4.2).

The table shows per-node cost staying flat as documents grow 64×; the
benchmarks time σd on three sizes.
"""

from __future__ import annotations

import pytest

from repro.core.instmap import InstMap
from repro.dtd.generate import InstanceGenerator
from repro.experiments.complexity import run_instmap_growth
from repro.experiments.report import format_table
from repro.xtree.nodes import tree_size


@pytest.mark.table
def test_table_e14_instmap_linear(capsys):
    rows = run_instmap_growth(sizes=(100, 400, 1600, 6400), seed=4)
    with capsys.disabled():
        print()
        print(format_table(rows, title="[E14] InstMap: time vs |T| "
                                       "(expected linear, flat us/node)"))
    # Per-node cost must not blow up across a 64x size range.
    per_node = [row["us/node"] for row in rows]
    assert max(per_node) <= 12 * max(0.5, min(per_node))


@pytest.mark.parametrize("star_mean", [2.0, 6.0, 14.0])
def test_bench_instmap_sizes(benchmark, school, star_mean):
    generator = InstanceGenerator(school.classes, seed=8, max_depth=14,
                                  star_mean=star_mean)
    instance = generator.generate()
    instmap = InstMap(school.sigma1)
    result = benchmark(lambda: instmap.apply(instance))
    assert tree_size(result.tree) >= tree_size(instance)


def main() -> int:
    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    sizes = (100, 400) if args.smoke else (100, 400, 1600, 6400)
    rows = run_instmap_growth(sizes=sizes, seed=4)
    print(format_table(rows, title="[E14] InstMap: time vs |T| "
                                   "(expected linear, flat us/node)"))
    per_node = [row["us/node"] for row in rows]
    nodes = sum(row["|T1|"] for row in rows)
    wall = sum(row["map-sec"] for row in rows)
    result = benchlib.record(
        "instance_mapping", args,
        ops_per_sec=nodes / wall if wall > 0 else 0.0,  # nodes mapped/s
        wall_time_s=wall,
        correct=max(per_node) <= 12 * max(0.5, min(per_node)),
        extra={"nodes": nodes, "rows": rows})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
