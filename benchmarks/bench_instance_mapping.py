"""E14 — InstMap cost: linear in the document sizes (Section 4.2).

The table shows per-node cost staying flat as documents grow 64×; the
benchmarks time σd on three sizes.
"""

from __future__ import annotations

import pytest

from repro.core.instmap import InstMap
from repro.dtd.generate import InstanceGenerator
from repro.experiments.complexity import run_codec_growth, run_instmap_growth
from repro.experiments.report import format_table
from repro.xtree.nodes import tree_size


@pytest.mark.table
def test_table_e14_instmap_linear(capsys):
    rows = run_instmap_growth(sizes=(100, 400, 1600, 6400), seed=4)
    with capsys.disabled():
        print()
        print(format_table(rows, title="[E14] InstMap: time vs |T| "
                                       "(expected linear, flat us/node)"))
    # Per-node cost must not blow up across a 64x size range.
    per_node = [row["us/node"] for row in rows]
    assert max(per_node) <= 12 * max(0.5, min(per_node))


@pytest.mark.parametrize("star_mean", [2.0, 6.0, 14.0])
def test_bench_instmap_sizes(benchmark, school, star_mean):
    generator = InstanceGenerator(school.classes, seed=8, max_depth=14,
                                  star_mean=star_mean)
    instance = generator.generate()
    instmap = InstMap(school.sigma1)
    result = benchmark(lambda: instmap.apply(instance))
    assert tree_size(result.tree) >= tree_size(instance)


def main() -> int:
    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    sizes = (100, 400) if args.smoke else (100, 400, 1600, 6400)
    rows = run_instmap_growth(sizes=sizes, seed=4)
    print(format_table(rows, title="[E14] InstMap: time vs |T| "
                                   "(expected linear, flat us/node)"))
    codec_rows = run_codec_growth(sizes=sizes, seed=4)
    print(format_table(codec_rows,
                       title="[E14b] Generated codec: fused map+serialize "
                             "vs interpreted apply + to_string"))
    per_node = [row["us/node"] for row in rows]
    nodes = sum(row["|T1|"] for row in rows)
    interp_wall = sum(row["map-sec"] for row in rows)
    codec_wall = sum(row["codec-sec"] for row in codec_rows)
    interp_ops = nodes / interp_wall if interp_wall > 0 else 0.0
    codec_ops = nodes / codec_wall if codec_wall > 0 else 0.0
    result = benchlib.record(
        "instance_mapping", args,
        # Headline: nodes mapped/s through the generated codec — the
        # serving path since the codec plane landed.  The interpreted
        # figure (the old headline) stays in extra for the trajectory.
        ops_per_sec=codec_ops,
        wall_time_s=interp_wall + codec_wall,
        correct=(max(per_node) <= 12 * max(0.5, min(per_node))
                 and all(row["identical"] for row in codec_rows)),
        extra={"nodes": nodes, "rows": rows, "codec_rows": codec_rows,
               "interp_ops_per_sec": round(interp_ops, 2),
               "codec_speedup_vs_interp": (round(codec_ops / interp_ops, 2)
                                           if interp_ops > 0 else 0.0)})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
