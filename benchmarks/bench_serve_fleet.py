"""E19 — pre-fork serve fleet: throughput ladder over worker counts.

The fleet scenario behind ``repro serve --workers N``: the store is
packed once (``repro store pack``), then a supervisor pre-forks N
workers that each open the pack zero-copy (mmap) and serve on one
shared port.  Concurrent keep-alive clients hammer the shared port at
every fleet size in the ladder.

Two claims are checked on every run (including ``--smoke``):

* **correctness** — every response, at every fleet size, is
  byte-identical to the direct in-process Engine call *and* to the
  other fleet sizes (the fleet invariant: process count is invisible
  in payloads); every worker's ``/healthz`` reports
  ``store_json_parses == 0`` (warm start from the pack re-parses no
  JSON artifact) and the expected pack generation; every fired request
  completes;
* **throughput** — req/s per fleet size; the headline ``ops_per_sec``
  is the largest fleet's, the full ladder lands in ``extra.scaling``.
  Scaling is *reported, not gated* — CI containers may expose a single
  core, where extra workers cannot help.

Run standalone for the table::

    PYTHONPATH=src python benchmarks/bench_serve_fleet.py

CI smoke (small workload, correctness asserted)::

    PYTHONPATH=src python benchmarks/bench_serve_fleet.py --smoke --json BENCH_serve_fleet.json
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

import benchlib

from repro.dtd.generate import InstanceGenerator
from repro.engine import Engine, pack_store
from repro.serve import FleetServer, ServeClient
from repro.serve.metrics import percentile
from repro.workloads.noise import expand_schema
from repro.workloads.queries import random_queries
from repro.workloads.synthetic import random_dtd
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

SMOKE = {"clients": 4, "requests_per_client": 18, "schema_types": 30,
         "documents": 6, "queries": 6, "fleet_sizes": [1, 2]}
FULL = {"clients": 8, "requests_per_client": 60, "schema_types": 60,
        "documents": 12, "queries": 10, "fleet_sizes": [1, 2, 4]}

#: How long to wait for every forked worker to answer /healthz.
_WORKER_READY_SECONDS = 30.0


def build_workload(tmp: Path, schema_types: int, documents: int,
                   queries: int):
    """A packed store plus request corpora with their expected
    (direct-engine) responses — same recipe as bench_serve_load, with
    the pack step the fleet warm-starts from."""
    expansion = expand_schema(random_dtd(schema_types, seed=7), seed=3)
    sigma = expansion.embedding
    docs = [to_string(InstanceGenerator(sigma.source, seed=seed,
                                        max_depth=5,
                                        star_mean=1.0).generate())
            for seed in range(documents)]
    query_texts = [str(q) for q in random_queries(sigma.source, queries,
                                                  seed=11)]
    store_path = tmp / "store"
    engine = Engine()
    engine.compile_embedding(sigma, ensure_valid=True)
    engine.save_store(store_path)
    pack_store(store_path)
    expected_maps = [
        to_string(engine.apply_embedding(sigma, parse_xml(xml)).tree)
        for xml in docs]
    expected_anfas = [
        engine.translate_query(sigma, query).canonical_describe()
        for query in query_texts]
    return store_path, docs, query_texts, expected_maps, expected_anfas


def wait_for_workers(fleet: FleetServer, errors: list) -> list[dict]:
    """Block until every worker answers /healthz on its direct port;
    returns the health rows (or records an error per dead worker)."""
    rows = []
    for port in fleet.worker_ports:
        client = ServeClient(fleet.host, port, timeout=5.0)
        deadline = time.monotonic() + _WORKER_READY_SECONDS
        while True:
            try:
                rows.append(client.healthz())
                break
            except OSError:
                if time.monotonic() >= deadline:
                    errors.append(f"worker on port {port} never came up")
                    break
                time.sleep(0.05)
        client.close()
    return rows


def run_load(host: str, port: int, docs, queries, expected_maps,
             expected_anfas, clients: int, requests_per_client: int):
    """Fire ``clients`` concurrent keep-alive clients at the shared
    port; returns (latencies, errors, completed, wall_seconds)."""
    latencies: list[float] = []
    errors: list[str] = []
    completed = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(offset: int) -> None:
        client = ServeClient(host, port)
        local: list[float] = []
        local_errors: list[str] = []
        done = 0
        barrier.wait()
        try:
            for round_no in range(requests_per_client):
                index = (offset + round_no) % len(docs)
                qindex = (offset + round_no) % len(queries)
                # 2:1 map:translate mix — mapping is the heavier call.
                if round_no % 3 != 2:
                    started = time.perf_counter()
                    served = client.map(xml=docs[index])["result"]
                    local.append(time.perf_counter() - started)
                    done += 1
                    if not (served["ok"]
                            and served["output"] == expected_maps[index]):
                        local_errors.append(
                            f"map[{index}] diverged from the direct "
                            "engine")
                else:
                    started = time.perf_counter()
                    item = client.translate(
                        query=queries[qindex])["result"]
                    local.append(time.perf_counter() - started)
                    done += 1
                    if not (item["ok"]
                            and item["anfa"] == expected_anfas[qindex]):
                        local_errors.append(
                            f"translate[{qindex}] diverged from the "
                            "direct engine")
        except Exception as exc:
            # A dead client thread must fail the benchmark, not drop
            # its share of the load from the measured sample.
            local_errors.append(
                f"client {offset} died: {type(exc).__name__}: {exc}")
        finally:
            client.close()
        with lock:
            latencies.extend(local)
            errors.extend(local_errors)
            completed[0] += done

    threads = [threading.Thread(target=worker, args=(offset,))
               for offset in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return latencies, errors, completed[0], wall


def run_benchmark(params: dict):
    """One full fleet-size ladder; returns (report, correct, wall,
    errors)."""
    errors: list[str] = []
    ladder: list[dict] = []
    total_wall = 0.0
    expected_total = params["clients"] * params["requests_per_client"]
    with tempfile.TemporaryDirectory() as tmp:
        store_path, docs, queries, expected_maps, expected_anfas = \
            build_workload(Path(tmp), params["schema_types"],
                           params["documents"], params["queries"])
        for size in params["fleet_sizes"]:
            with FleetServer(store_path, workers=size,
                             port=0) as fleet:
                health = wait_for_workers(fleet, errors)
                for row in health:
                    if row.get("store_json_parses") != 0:
                        errors.append(
                            f"fleet={size} worker {row.get('worker')} "
                            f"paid {row.get('store_json_parses')} JSON "
                            "parses at warm start")
                    if row.get("generation") != 1:
                        errors.append(
                            f"fleet={size} worker {row.get('worker')} "
                            f"serves generation {row.get('generation')}"
                            ", expected 1")
                latencies, load_errors, completed, wall = run_load(
                    fleet.host, fleet.port, docs, queries,
                    expected_maps, expected_anfas, params["clients"],
                    params["requests_per_client"])
                errors.extend(f"fleet={size}: {message}"
                              for message in load_errors)
                if completed != expected_total:
                    errors.append(f"fleet={size}: only {completed} of "
                                  f"{expected_total} requests completed")
                total_wall += wall
                ladder.append({
                    "workers": size,
                    "requests": completed,
                    "req_per_sec": round(completed / wall, 1)
                    if wall > 0 else 0.0,
                    "p50_ms": round(1e3 * percentile(latencies, 50.0),
                                    3),
                    "p99_ms": round(1e3 * percentile(latencies, 99.0),
                                    3),
                })
    headline = ladder[-1]["req_per_sec"] if ladder else 0.0
    base = ladder[0]["req_per_sec"] if ladder else 0.0
    report = {
        "clients": params["clients"],
        "requests_per_fleet_size": expected_total,
        "scaling": ladder,
        "speedup_vs_one_worker": round(headline / base, 2)
        if base > 0 else 0.0,
        "identity_errors": len(errors),
    }
    return report, headline, not errors, total_wall, errors


# -- pytest entry point -------------------------------------------------------

def test_serve_fleet_smoke():
    """Correctness bar: every fleet size serves byte-identical
    responses from zero-JSON-parse warm starts, nothing dropped."""
    report, _ops, correct, _wall, errors = run_benchmark(SMOKE)
    assert correct, (errors[:3], report)
    assert [row["workers"] for row in report["scaling"]] == \
        SMOKE["fleet_sizes"]
    assert all(row["requests"] == report["requests_per_fleet_size"]
               for row in report["scaling"])


def main() -> int:
    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    params = SMOKE if args.smoke else FULL

    print(f"[E19] serve fleet: {params['clients']} concurrent clients × "
          f"{params['requests_per_client']} requests per fleet size "
          f"{params['fleet_sizes']} (packed store, median of "
          f"{args.repeats})")

    all_errors: list[str] = []

    def run_once():
        report, ops, correct, wall, errors = run_benchmark(params)
        all_errors.extend(errors)
        return ops, wall, correct, report

    ops, wall, correct, report = benchlib.run_repeats(run_once,
                                                      args.repeats)

    header = (f"{'workers':>7}  {'requests':>8}  {'req/s':>8}  "
              f"{'p50 ms':>7}  {'p99 ms':>7}")
    print(header)
    print("-" * len(header))
    for row in report["scaling"]:
        print(f"{row['workers']:>7}  {row['requests']:>8}  "
              f"{row['req_per_sec']:>8.1f}  {row['p50_ms']:>7.2f}  "
              f"{row['p99_ms']:>7.2f}")
    print()
    if all_errors:
        for message in all_errors[:5]:
            print(f"  error: {message}")
    print("correctness: responses byte-identical to direct engine "
          f"calls at every fleet size ({'OK' if correct else 'FAILED'}), "
          "zero JSON parses per worker warm start")

    result = benchlib.record("serve_fleet", args, ops_per_sec=ops,
                             wall_time_s=wall, correct=correct,
                             extra=report)
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
