"""E11 — the 3SAT reduction: agreement with DPLL and search cost growth.

The table confirms sat ⟺ embedding on a family of formulas; the
benchmarks time the exact solver on the reduction instances (expected
exponential growth — this is the point of Theorem 5.1).
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table
from repro.matching.exact import exact_embedding
from repro.matching.reduction import dpll_satisfiable, reduction_from_3sat

FORMULAS = {
    "1sat": [((1, True),)],
    "1unsat": [((1, True),), ((1, False),)],
    "2sat": [((1, True), (2, True)), ((1, False), (2, True))],
    "2unsat": [((1, True), (2, True)), ((1, True), (2, False)),
               ((1, False), (2, True)), ((1, False), (2, False))],
    "3sat": [((1, True), (2, False), (3, True)),
             ((1, False), (2, True), (3, False)),
             ((2, True), (3, True), (1, True))],
}


def _solve(formula):
    reduction = reduction_from_3sat(formula)
    return exact_embedding(reduction.source, reduction.target,
                           reduction.att, max_len=4, max_paths=64,
                           max_candidates=8, node_budget=500_000)


@pytest.mark.table
def test_table_e11_reduction(capsys):
    rows = []
    for name, formula in FORMULAS.items():
        sat = dpll_satisfiable(formula) is not None
        import time

        started = time.perf_counter()
        embedding = _solve(formula)
        elapsed = time.perf_counter() - started
        rows.append({
            "formula": name,
            "clauses": len(formula),
            "dpll": "SAT" if sat else "UNSAT",
            "embedding": "found" if embedding else "none",
            "agree": (embedding is not None) == sat,
            "solver-sec": round(elapsed, 3),
        })
    with capsys.disabled():
        print()
        print(format_table(rows, title="[E11] Theorem 5.1 reduction vs DPLL"))
    assert all(row["agree"] for row in rows)


@pytest.mark.parametrize("name", ["1sat", "2sat", "3sat"])
def test_bench_exact_on_reduction(benchmark, name):
    formula = FORMULAS[name]
    result = benchmark(lambda: _solve(formula))
    assert result is not None


def test_bench_dpll(benchmark):
    benchmark(lambda: [dpll_satisfiable(f) for f in FORMULAS.values()])


def main() -> int:
    import time

    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    rows = []
    started = time.perf_counter()
    for name, formula in FORMULAS.items():
        sat = dpll_satisfiable(formula) is not None
        embedding = _solve(formula)
        rows.append({
            "formula": name,
            "clauses": len(formula),
            "dpll": "SAT" if sat else "UNSAT",
            "embedding": "found" if embedding else "none",
            "agree": (embedding is not None) == sat,
        })
    wall = time.perf_counter() - started
    print(format_table(rows, title="[E11] Theorem 5.1 reduction vs DPLL"))
    result = benchlib.record(
        "np_reduction", args,
        ops_per_sec=len(rows) / wall if wall > 0 else 0.0,
        wall_time_s=wall,
        correct=all(row["agree"] for row in rows),
        extra={"rows": rows})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
