"""Compiled document-plane fast path: reference vs. compiled ops/sec.

Three serving operations — ``σd`` (map), ``σd⁻¹`` (invert) and ``Tr``
(translate) — each timed on the reference walkers and on the compiled
programs of :mod:`repro.engine.plan` / the primed
:class:`~repro.core.translate.Translator`, over small, medium and
~1000-level-deep documents.

``correct`` is the **identity check**, never a timing ratio: the
compiled outputs must be byte-identical to the reference outputs
(serialized tree, structural ``idM`` signature, inverse tree, canonical
automaton rendering), and the deep document must round-trip without
``RecursionError``.
"""

from __future__ import annotations

import time

from repro.core.errors import InverseError
from repro.core.instmap import InstMap
from repro.core.inverse import run_invert
from repro.core.translate import Translator
from repro.dtd.generate import InstanceGenerator
from repro.schema import load_schema
from repro.core.embedding import build_embedding
from repro.engine.plan import InverseProgram
from repro.workloads.library import school_example
from repro.workloads.queries import random_queries
from repro.xtree.nodes import ElementNode, tree_size
from repro.xtree.serialize import to_string


def _idm_signature(result):
    order = {node.node_id: index
             for index, node in enumerate(result.tree.iter())}
    return sorted((order[target], source)
                  for target, source in result.idM.items())


def _deep_bundle(depth: int):
    source = load_schema("node -> node*", format="compact",
                         name="chain-src")
    target = load_schema("wrap -> inner\ninner -> wrap*",
                         format="compact", root="wrap",
                         name="chain-tgt")
    sigma = build_embedding(source, target, {"node": "wrap"},
                            {("node", "node"): "inner/wrap"})
    root = ElementNode("node")
    current = root
    for _ in range(depth - 1):
        child = ElementNode("node")
        current.append(child)
        current = child
    return sigma, root


def _time_ops(fn, budget_s: float, min_rounds: int = 3) -> float:
    """Rounds/second of ``fn`` within a wall budget (min 3 rounds)."""
    rounds = 0
    started = time.perf_counter()
    while True:
        fn()
        rounds += 1
        elapsed = time.perf_counter() - started
        if rounds >= min_rounds and elapsed >= budget_s:
            return rounds / elapsed


def run(smoke: bool) -> tuple[list[dict], bool, float, float]:
    budget = 0.08 if smoke else 0.35
    school = school_example()
    docs = []
    for label, star_mean, depth in (("small", 2.0, 10),
                                    ("medium", 10.0, 14)):
        generator = InstanceGenerator(school.classes, seed=8,
                                      max_depth=depth, star_mean=star_mean)
        docs.append((label, school.sigma1, generator.generate()))
    deep_sigma, deep_doc = _deep_bundle(200 if smoke else 1000)
    docs.append(("deep", deep_sigma, deep_doc))
    # Partial document: every <class> loses its <title> child, so every
    # class fragment misses the static concat shape and is served by
    # the per-signature sparse-concat program (never the reference
    # builder — its fallback counter gates ``correct`` below).
    generator = InstanceGenerator(school.classes, seed=8,
                                  max_depth=14, star_mean=10.0)
    partial_doc = generator.generate()
    for element in partial_doc.iter_elements():
        if element.tag != "class":
            continue
        for child in element.children:
            if isinstance(child, ElementNode) and child.tag == "title":
                element.children.remove(child)
                break
    docs.append(("partial", school.sigma1, partial_doc))

    rows: list[dict] = []
    identical = True
    total_nodes_per_sec = 0.0
    wall_started = time.perf_counter()

    for label, sigma, document in docs:
        instmap = InstMap(sigma)
        nodes = tree_size(document)

        # -- map: compiled program vs reference builder -----------------
        fast = instmap.apply(document)
        reference = instmap.apply_reference(document)
        identical &= to_string(fast.tree) == to_string(reference.tree)
        identical &= _idm_signature(fast) == _idm_signature(reference)
        map_fast = _time_ops(
            lambda im=instmap, doc=document: im.apply(doc), budget)
        map_ref = _time_ops(
            lambda im=instmap, doc=document: im.apply_reference(doc),
            budget)

        # -- invert: compiled inverse program vs reference walk ---------
        inverse = InverseProgram(sigma, instmap._infos)
        mapped = fast.tree
        if label == "partial":
            # A dropped source child leaves no holder in the image —
            # σd⁻¹ must refuse, with the same error text on both paths
            # (there is nothing meaningful to time here).
            try:
                inverse.apply(mapped)
                identical = False
            except InverseError as fast_error:
                try:
                    run_invert(sigma, mapped)
                    identical = False
                except InverseError as reference_error:
                    identical &= str(fast_error) == str(reference_error)
            inv_fast = inv_ref = 1.0
        else:
            identical &= (to_string(inverse.apply(mapped))
                          == to_string(run_invert(sigma, mapped)))
            inv_fast = _time_ops(
                lambda inv=inverse, tree=mapped: inv.apply(tree), budget)
            inv_ref = _time_ops(
                lambda sig=sigma, tree=mapped: run_invert(sig, tree),
                budget)

        row = {
            "doc": label, "nodes": nodes,
            "map-fast-ops": round(map_fast, 1),
            "map-ref-ops": round(map_ref, 1),
            "map-speedup": round(map_fast / map_ref, 2),
        }
        if label != "partial":
            row.update({
                "invert-fast-ops": round(inv_fast, 1),
                "invert-ref-ops": round(inv_ref, 1),
                "invert-speedup": round(inv_fast / inv_ref, 2),
            })
        if label == "partial":
            # Every mismatched fragment must have been served by a
            # sparse-concat program at compiled speed — a reference-
            # builder fallback on these (all-declared-edges) shapes is
            # a fast-path regression.
            program = instmap._program
            row["sparse-served"] = program.sparse_served
            identical &= program.reference_fallbacks == 0
            identical &= program.sparse_served > 0
        rows.append(row)
        total_nodes_per_sec += map_fast * nodes

    # -- translate: primed/memoised translator vs per-query compile -----
    sigma = school.sigma1
    queries = random_queries(sigma.source, 6 if smoke else 14,
                             seed=9, max_steps=7)
    compiled = Translator(sigma)
    for query in queries:  # identity: same automaton bytes per query
        fresh = Translator(sigma, prime=False)
        identical &= (compiled.translate(query).canonical_describe()
                      == fresh.translate(query).canonical_describe())

    def translate_compiled():
        for query in queries:
            compiled.translate(query)

    def translate_reference():
        for query in queries:
            Translator(sigma, prime=False).translate(query)

    tr_fast = _time_ops(translate_compiled, budget) * len(queries)
    tr_ref = _time_ops(translate_reference, budget) * len(queries)
    rows.append({
        "doc": "queries", "nodes": len(queries),
        "translate-fast-ops": round(tr_fast, 1),
        "translate-ref-ops": round(tr_ref, 1),
        "translate-speedup": round(tr_fast / tr_ref, 2),
    })

    wall = time.perf_counter() - wall_started
    return rows, identical, total_nodes_per_sec, wall


def main() -> int:
    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    rows, identical, nodes_per_sec, wall = run(smoke=args.smoke)
    for row in rows:
        print("  " + "  ".join(f"{key}={value}"
                               for key, value in row.items()))
    result = benchlib.record(
        "fastpath", args,
        ops_per_sec=nodes_per_sec,  # compiled-path nodes mapped/s
        wall_time_s=wall,
        correct=identical,
        extra={"rows": rows})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
