"""E18 — serve daemon under load: sustained req/s and tail latency.

The serving scenario behind ``repro.serve``: one warm-started daemon,
many concurrent clients mixing document mappings (``POST /v1/map``) and
query translations (``POST /v1/translate``).  The store is built once;
the server compiles everything before the socket opens, so the measured
path is pure request serving.

Two claims are checked on every run (including ``--smoke``):

* **correctness** — every response is byte-identical to the direct
  in-process Engine call (``to_string`` of the mapping /
  ``canonical_describe`` of the translation), under at least 4
  concurrent clients, and the server's engine reports **zero** compile
  misses while serving;
* **throughput** — sustained requests/sec plus client-observed p50 /
  p90 / p99 / max latency are reported (and recorded via ``--json``).

Run standalone for the table::

    PYTHONPATH=src python benchmarks/bench_serve_load.py

CI smoke (small workload, correctness asserted)::

    PYTHONPATH=src python benchmarks/bench_serve_load.py --smoke --json BENCH_serve_load.json
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

import benchlib

from repro.dtd.generate import InstanceGenerator
from repro.engine import Engine
from repro.serve import ReproServer, ServeClient
from repro.serve.metrics import percentile
from repro.workloads.noise import expand_schema
from repro.workloads.queries import random_queries
from repro.workloads.synthetic import random_dtd
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

SMOKE = {"clients": 4, "requests_per_client": 24, "schema_types": 30,
         "documents": 6, "queries": 6}
FULL = {"clients": 8, "requests_per_client": 80, "schema_types": 60,
        "documents": 12, "queries": 10}


def build_workload(tmp: Path, schema_types: int, documents: int,
                   queries: int):
    """A store-backed embedding plus request corpora with their
    expected (direct-engine) responses."""
    expansion = expand_schema(random_dtd(schema_types, seed=7), seed=3)
    sigma = expansion.embedding
    docs = [to_string(InstanceGenerator(sigma.source, seed=seed,
                                        max_depth=5,
                                        star_mean=1.0).generate())
            for seed in range(documents)]
    query_texts = [str(q) for q in random_queries(sigma.source, queries,
                                                  seed=11)]
    store_path = tmp / "store"
    engine = Engine()
    engine.compile_embedding(sigma, ensure_valid=True)
    engine.save_store(store_path)
    expected_maps = [
        to_string(engine.apply_embedding(sigma, parse_xml(xml)).tree)
        for xml in docs]
    expected_anfas = [
        engine.translate_query(sigma, query).canonical_describe()
        for query in query_texts]
    return store_path, docs, query_texts, expected_maps, expected_anfas


def run_load(server: ReproServer, docs, queries, expected_maps,
             expected_anfas, clients: int, requests_per_client: int):
    """Fire ``clients`` concurrent client threads; returns
    (latencies_by_kind, errors, wall_seconds)."""
    latencies: dict[str, list[float]] = {"map": [], "translate": []}
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(offset: int) -> None:
        client = ServeClient.for_server(server)
        local: dict[str, list[float]] = {"map": [], "translate": []}
        local_errors: list[str] = []
        barrier.wait()
        try:
            for round_no in range(requests_per_client):
                index = (offset + round_no) % len(docs)
                qindex = (offset + round_no) % len(queries)
                # 2:1 map:translate mix — mapping is the heavier call.
                if round_no % 3 != 2:
                    started = time.perf_counter()
                    served = client.map(xml=docs[index])["result"]
                    local["map"].append(time.perf_counter() - started)
                    if not (served["ok"]
                            and served["output"] == expected_maps[index]):
                        local_errors.append(
                            f"map[{index}] diverged from the direct "
                            "engine")
                else:
                    started = time.perf_counter()
                    item = client.translate(
                        query=queries[qindex])["result"]
                    local["translate"].append(
                        time.perf_counter() - started)
                    if not (item["ok"]
                            and item["anfa"] == expected_anfas[qindex]):
                        local_errors.append(
                            f"translate[{qindex}] diverged from the "
                            "direct engine")
        except Exception as exc:
            # A dead worker must fail the benchmark, not silently drop
            # its share of the load from the measured sample.
            local_errors.append(
                f"worker {offset} died: {type(exc).__name__}: {exc}")
        with lock:
            latencies["map"].extend(local["map"])
            latencies["translate"].extend(local["translate"])
            errors.extend(local_errors)

    threads = [threading.Thread(target=worker, args=(offset,))
               for offset in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return latencies, errors, wall


def run_benchmark(params: dict):
    with tempfile.TemporaryDirectory() as tmp:
        store_path, docs, queries, expected_maps, expected_anfas = \
            build_workload(Path(tmp), params["schema_types"],
                           params["documents"], params["queries"])
        with ReproServer(store=store_path, port=0) as server:
            latencies, errors, wall = run_load(
                server, docs, queries, expected_maps, expected_anfas,
                params["clients"], params["requests_per_client"])
            engine_stats = server.state.engine.stats()
        total = sum(len(v) for v in latencies.values())
        expected_total = params["clients"] * params["requests_per_client"]
        if total != expected_total:
            errors.append(f"only {total} of {expected_total} requests "
                          "completed")
        zero_miss = (engine_stats["schemas"]["misses"] == 0
                     and engine_stats["embeddings"]["misses"] == 0)
        all_samples = latencies["map"] + latencies["translate"]
        report = {
            "clients": params["clients"],
            "requests": total,
            "req_per_sec": round(total / wall, 1) if wall > 0 else 0.0,
            "p50_ms": round(1e3 * percentile(all_samples, 50.0), 3),
            "p90_ms": round(1e3 * percentile(all_samples, 90.0), 3),
            "p99_ms": round(1e3 * percentile(all_samples, 99.0), 3),
            "max_ms": round(1e3 * max(all_samples), 3) if all_samples
            else 0.0,
            "identity_errors": len(errors),
            "zero_compile_misses": zero_miss,
        }
        correct = not errors and zero_miss
        return report, correct, wall, errors


# -- pytest entry point -------------------------------------------------------

def test_serve_load_smoke():
    """Correctness bar: ≥4 concurrent clients, every response
    byte-identical to the direct engine, zero compile misses."""
    report, correct, _wall, errors = run_benchmark(SMOKE)
    assert correct, (errors[:3], report)
    assert report["clients"] >= 4
    assert report["requests"] == SMOKE["clients"] * \
        SMOKE["requests_per_client"]


def main() -> int:
    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    params = SMOKE if args.smoke else FULL

    print(f"[E18] serve load: {params['clients']} concurrent clients × "
          f"{params['requests_per_client']} requests "
          f"(schema {params['schema_types']} types, warm store start, "
          f"median of {args.repeats})")

    all_errors: list[str] = []

    def run_once():
        report, correct, wall, errors = run_benchmark(params)
        all_errors.extend(errors)
        return report["req_per_sec"], wall, correct, report

    ops, wall, correct, report = benchlib.run_repeats(run_once,
                                                      args.repeats)
    errors = all_errors
    header = (f"{'clients':>7}  {'requests':>8}  {'req/s':>8}  "
              f"{'p50 ms':>7}  {'p90 ms':>7}  {'p99 ms':>7}  "
              f"{'max ms':>7}")
    print(header)
    print("-" * len(header))
    print(f"{report['clients']:>7}  {report['requests']:>8}  "
          f"{report['req_per_sec']:>8.1f}  {report['p50_ms']:>7.2f}  "
          f"{report['p90_ms']:>7.2f}  {report['p99_ms']:>7.2f}  "
          f"{report['max_ms']:>7.2f}")
    print()
    if errors:
        for message in errors[:5]:
            print(f"  identity error: {message}")
    print("correctness: responses byte-identical to direct engine calls "
          f"({'OK' if not errors else 'FAILED'}), zero compile misses "
          f"({'OK' if report['zero_compile_misses'] else 'FAILED'})")

    result = benchlib.record("serve_load", args,
                             ops_per_sec=ops,
                             wall_time_s=wall, correct=correct,
                             extra=report)
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
