"""Schema-frontend throughput: per-format parse + compile ops/sec.

The frontend layer must not make schema ingestion the bottleneck: this
bench measures, for the Fig. 1 school schema (31 element types)
expressed as DTD, compact and XSD text,

* ``lower_ops_per_sec`` — ``load_schema`` with auto-detection (the
  CLI / serve inline-schema path, parse included);
* ``warm_compile_ops_per_sec`` — ``Engine.compile_schema(text,
  format=…)`` against a warm fingerprint cache (the steady-state
  serving path: the parse itself is the remaining cost).

``correct`` is the parity contract, never a timing ratio: every format
must auto-detect, lower to the same fingerprint as the original
schema, and the warm engine must serve all repeat compiles as cache
hits with zero misses.

Run standalone for the table::

    PYTHONPATH=src python benchmarks/bench_schema_frontends.py

CI smoke (reduced iterations, same assertions)::

    PYTHONPATH=src python benchmarks/bench_schema_frontends.py --smoke
"""

from __future__ import annotations

import time

from repro.dtd.serialize import dtd_to_compact, dtd_to_text
from repro.engine import Engine
from repro.schema import detect_format, dtd_to_xsd, load_schema
from repro.workloads.library import school_example

FORMATS = ("dtd", "compact", "xsd")


def run(iterations: int) -> tuple[dict, bool]:
    school = school_example().school
    texts = {"dtd": dtd_to_text(school),
             "compact": dtd_to_compact(school),
             "xsd": dtd_to_xsd(school)}

    correct = True
    extra: dict = {"types": len(school.types), "iterations": iterations}

    for format in FORMATS:
        text = texts[format]
        correct &= detect_format(text) == format

        started = time.perf_counter()
        for _ in range(iterations):
            parsed = load_schema(text)
        lower_wall = time.perf_counter() - started
        correct &= parsed.fingerprint() == school.fingerprint()

        engine = Engine()
        engine.compile_schema(text, format=format)  # the one cold miss
        engine.reset_stats()
        started = time.perf_counter()
        for _ in range(iterations):
            engine.compile_schema(text, format=format)
        compile_wall = time.perf_counter() - started
        correct &= engine.schema_stats.misses == 0
        correct &= engine.schema_stats.hits == iterations

        extra[format] = {
            "lower_ops_per_sec": round(
                iterations / max(lower_wall, 1e-9), 2),
            "warm_compile_ops_per_sec": round(
                iterations / max(compile_wall, 1e-9), 2),
        }
    return extra, correct


def main() -> int:
    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    iterations = 20 if args.smoke else 300
    started = time.perf_counter()
    extra, correct = run(iterations)
    wall = time.perf_counter() - started
    for format in FORMATS:
        row = extra[format]
        print(f"  {format:<8} lower {row['lower_ops_per_sec']:>10} op/s"
              f"   warm-compile {row['warm_compile_ops_per_sec']:>12}"
              " op/s")
    # Headline: the slowest format's lowering rate — what bounds
    # ingestion throughput for a mixed-format schema corpus.
    headline = min(extra[format]["lower_ops_per_sec"]
                   for format in FORMATS)
    record = benchlib.record("schema_frontends", args,
                             ops_per_sec=headline, wall_time_s=wall,
                             correct=correct, extra=extra)
    return benchlib.finish(record, args)


if __name__ == "__main__":
    raise SystemExit(main())
