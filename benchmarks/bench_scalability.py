"""E13 — the VLDB'05 efficiency study: running time vs. schema size.

Paper shape: heuristics handle schemas "up to a few hundred nodes" with
running times "in the range of seconds or minutes".  We sweep random
sources expanded into targets of a few hundred types and verify times
stay within that envelope (they are far faster here — modern hardware —
but the growth curve is the reproducible shape).
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table
from repro.experiments.scalability import run_scalability
from repro.matching.search import find_embedding
from repro.workloads.noise import expand_schema, noisy_att
from repro.workloads.synthetic import random_dtd


@pytest.mark.table
def test_table_e13_scalability(capsys):
    rows = run_scalability(sizes=(10, 20, 40, 80, 120),
                           methods=("quality", "random"),
                           noise=0.3, seed=2)
    with capsys.disabled():
        print()
        print(format_table([r.as_dict() for r in rows],
                           title="[E13] search time vs schema size "
                                 "(targets up to a few hundred types)"))
    assert all(row.success for row in rows)
    # The paper's envelope: seconds-to-minutes; assert generous bound.
    assert max(row.seconds for row in rows) < 120.0


@pytest.mark.parametrize("size", [20, 60, 120])
def test_bench_search_by_size(benchmark, size):
    source = random_dtd(size, seed=size + 1)
    expansion = expand_schema(source, seed=3)
    att = noisy_att(expansion, 0.3, seed=4)

    def run():
        result = find_embedding(expansion.source, expansion.target, att,
                                method="quality", seed=1)
        assert result.found
        return result

    benchmark(run)


def main() -> int:
    import time

    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    if args.smoke:
        sizes, methods = (10, 20), ("quality",)
    else:
        sizes, methods = (10, 20, 40, 80, 120), ("quality", "random")
    started = time.perf_counter()
    rows = run_scalability(sizes=sizes, methods=methods, noise=0.3,
                           seed=2)
    wall = time.perf_counter() - started
    print(format_table([r.as_dict() for r in rows],
                       title="[E13] search time vs schema size"))
    result = benchlib.record(
        "scalability", args,
        ops_per_sec=len(rows) / wall if wall > 0 else 0.0,  # searches/s
        wall_time_s=wall,
        correct=(all(row.success for row in rows)
                 and max(row.seconds for row in rows) < 120.0),
        extra={"rows": [r.as_dict() for r in rows]})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
