"""E17 — Parallel corpus serving: store warm start + multiprocess fan-out.

The serving scenario behind ``repro.engine.parallel``: one embedding,
an NDJSON corpus of documents, and a machine with several cores.  The
artifact store is built once (``Engine.save_store``); every worker then
warm-starts from it and serves its chunks with **zero** schema/embedding
compile misses, so the only serial work left is the corpus read and the
order-preserving merge.

Two claims are checked:

* **correctness** — ``jobs=N`` output is byte-identical to ``jobs=1``
  and the aggregated worker stats show zero compile misses (always
  asserted, including in ``--smoke`` mode);
* **scaling** — throughput at 4 workers is ≥ 2× the serial run.  This
  is only asserted when the machine actually has ≥ 4 CPUs (a 1-core CI
  container cannot demonstrate scaling, only correctness).

Run standalone for the table::

    PYTHONPATH=src python benchmarks/bench_parallel_corpus.py

CI smoke (small corpus, correctness only)::

    PYTHONPATH=src python benchmarks/bench_parallel_corpus.py --smoke --jobs 2
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from repro.engine import (
    CorpusDocument,
    Engine,
    ParallelRunner,
    write_ndjson,
)
from repro.dtd.generate import InstanceGenerator
from repro.workloads.noise import expand_schema
from repro.workloads.synthetic import random_dtd
from repro.xtree.serialize import to_string

SMOKE_DOCUMENTS = 24
FULL_DOCUMENTS = 200


def build_workload(tmp: Path, documents: int, schema_types: int):
    """An NDJSON corpus + a prebuilt artifact store for one embedding."""
    expansion = expand_schema(random_dtd(schema_types, seed=7), seed=3)
    sigma = expansion.embedding
    corpus_path = tmp / "corpus.ndjson"
    write_ndjson(
        (CorpusDocument(
            f"doc{seed:05d}.xml",
            to_string(InstanceGenerator(sigma.source, seed=seed, max_depth=6,
                                        star_mean=1.5).generate()))
         for seed in range(documents)),
        corpus_path)

    store_path = tmp / "store"
    engine = Engine()
    engine.compile_embedding(sigma, ensure_valid=True)
    engine.save_store(store_path)
    return sigma, corpus_path, store_path


def run_jobs(sigma, corpus_path: Path, store_path: Path, jobs: int,
             chunk_size: int = 4):
    """One timed corpus pass; returns (outcomes, seconds, report)."""
    runner = ParallelRunner(jobs=jobs, chunk_size=chunk_size,
                            store=store_path)
    started = time.perf_counter()
    outcomes = runner.map_corpus(sigma, corpus_path)
    elapsed = time.perf_counter() - started
    return outcomes, elapsed, runner.last_report


def check_correctness(baseline, outcomes, report) -> None:
    """Byte-identity with the serial run + zero compile misses."""
    assert [o.name for o in outcomes] == [o.name for o in baseline]
    assert all(o.ok for o in outcomes), \
        [o.output for o in outcomes if not o.ok][:3]
    assert [o.output for o in outcomes] == [o.output for o in baseline], \
        "parallel output differs from the serial run"
    assert report.stats["schemas"]["misses"] == 0, report.stats
    assert report.stats["embeddings"]["misses"] == 0, report.stats


def run_benchmark(documents: int, schema_types: int, job_counts):
    with tempfile.TemporaryDirectory() as tmp:
        sigma, corpus_path, store_path = build_workload(
            Path(tmp), documents, schema_types)
        rows = []
        baseline = None
        serial_seconds = None
        for jobs in job_counts:
            outcomes, elapsed, report = run_jobs(sigma, corpus_path,
                                                 store_path, jobs)
            if baseline is None:
                baseline, serial_seconds = outcomes, elapsed
            check_correctness(baseline, outcomes, report)
            rows.append({
                "jobs": jobs,
                "documents": len(outcomes),
                "seconds": round(elapsed, 4),
                "docs/s": round(len(outcomes) / elapsed, 1),
                "speedup": round(serial_seconds / elapsed, 2),
            })
        return rows


# -- pytest entry points ------------------------------------------------------

def test_parallel_corpus_identical_and_warm():
    """Correctness bar: jobs=2 output byte-identical to jobs=1, with
    zero compile misses in every warm-started worker."""
    rows = run_benchmark(SMOKE_DOCUMENTS, 30, (1, 2))
    assert [row["jobs"] for row in rows] == [1, 2]
    assert all(row["documents"] == SMOKE_DOCUMENTS for row in rows)


def test_parallel_corpus_scales_when_cores_allow():
    """Scaling bar: ≥2× at 4 workers — only meaningful with ≥4 CPUs."""
    cores = os.cpu_count() or 1
    if cores < 4:
        import pytest
        pytest.skip(f"only {cores} CPU(s); scaling needs >= 4")
    best = 0.0
    for _attempt in range(2):  # wall-clock ratios jitter on loaded boxes
        rows = run_benchmark(FULL_DOCUMENTS, 60, (1, 4))
        best = max(best, rows[-1]["speedup"])
        if best >= 2.0:
            break
    assert best >= 2.0, best


def main() -> int:
    import benchlib

    parser = benchlib.make_parser(__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="highest worker count to benchmark")
    parser.add_argument("--documents", type=int, default=None)
    args = parser.parse_args()

    cores = os.cpu_count() or 1
    if args.smoke:
        documents = args.documents or SMOKE_DOCUMENTS
        top = args.jobs or 2
        job_counts = [1, top]
        schema_types = 30
    else:
        documents = args.documents or FULL_DOCUMENTS
        top = args.jobs or 4
        job_counts = sorted({1, 2, top})
        schema_types = 60

    print(f"[E17] parallel corpus serving: {documents} documents, "
          f"store-backed warm start, {cores} CPU(s) available")
    correct = True
    identity_error = ""
    started = time.perf_counter()
    try:
        rows = run_benchmark(documents, schema_types, job_counts)
    except AssertionError as exc:
        correct = False
        identity_error = str(exc)
        rows = []
    wall = time.perf_counter() - started
    header = (f"{'jobs':>4}  {'documents':>9}  {'seconds':>8}  "
              f"{'docs/s':>8}  {'speedup':>7}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['jobs']:>4}  {row['documents']:>9}  "
              f"{row['seconds']:>8.4f}  {row['docs/s']:>8.1f}  "
              f"{row['speedup']:>6.2f}x")
    print()
    if correct:
        print("correctness: parallel output byte-identical to serial, "
              "zero compile misses in warm-started workers")
    else:
        print(f"correctness FAILED: {identity_error[:200]}")

    top_speedup = rows[-1]["speedup"] if rows else 0.0
    perf_ok = True
    if not args.smoke and rows and cores >= rows[-1]["jobs"]:
        perf_ok = top_speedup >= 2.0
        print(f"{'PASS' if perf_ok else 'FAIL'} (>=2x at "
              f"{rows[-1]['jobs']} workers: {top_speedup:.2f}x)")
    result = benchlib.record(
        "parallel_corpus", args,
        ops_per_sec=max((row["docs/s"] for row in rows), default=0.0),
        wall_time_s=wall, correct=correct,
        extra={"rows": rows, "cores": cores, "speedup_ok": perf_ok,
               "identity_error": identity_error[:500]})
    code = benchlib.finish(result, args)
    if code:
        return code
    # Full runs keep the historical ≥2× gate when the cores exist;
    # --smoke gates on byte-identity + zero misses only.
    return 0 if args.smoke or perf_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
