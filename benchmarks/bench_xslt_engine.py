"""E9 — the XSLT realisation: generated stylesheets vs native algorithms.

Times the forward stylesheet against InstMap and the inverse stylesheet
against the structural inverse (the paper positions XSLT as the
practical carrier of σd; the native algorithms are the spec).
"""

from __future__ import annotations

import pytest

from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.dtd.generate import InstanceGenerator
from repro.experiments.report import format_table
from repro.xslt.engine import apply_stylesheet
from repro.xslt.forward import forward_stylesheet
from repro.xslt.inverse import inverse_stylesheet
from repro.xtree.nodes import tree_equal, tree_size


@pytest.fixture(scope="module")
def setup(school):
    instance = InstanceGenerator(school.classes, seed=6, max_depth=12,
                                 star_mean=5.0).generate()
    forward = forward_stylesheet(school.sigma1)
    inverse = inverse_stylesheet(school.sigma1)
    instmap = InstMap(school.sigma1)
    image = instmap.apply(instance).tree
    return school, instance, forward, inverse, instmap, image


@pytest.mark.table
def test_table_e9_agreement(setup, capsys):
    school, instance, forward, inverse, instmap, image = setup
    via_xslt = apply_stylesheet(forward, instance)
    recovered = apply_stylesheet(inverse, image)
    rows = [{
        "|T1|": tree_size(instance),
        "|T2|": tree_size(image),
        "xslt-forward == InstMap": tree_equal(via_xslt, image),
        "xslt-inverse == source": tree_equal(recovered, instance),
        "forward-rules": len(forward.rules),
        "inverse-rules": len(inverse.rules),
    }]
    with capsys.disabled():
        print()
        print(format_table(rows, title="[E9] generated XSLT vs native "
                                       "algorithms"))
    assert rows[0]["xslt-forward == InstMap"]
    assert rows[0]["xslt-inverse == source"]


def test_bench_xslt_forward(benchmark, setup):
    _school, instance, forward, _inv, _im, _image = setup
    benchmark(lambda: apply_stylesheet(forward, instance))


def test_bench_native_instmap(benchmark, setup):
    _school, instance, _fwd, _inv, instmap, _image = setup
    benchmark(lambda: instmap.apply(instance))


def test_bench_xslt_inverse(benchmark, setup):
    _school, _instance, _fwd, inverse, _im, image = setup
    benchmark(lambda: apply_stylesheet(inverse, image))


def test_bench_native_inverse(benchmark, setup):
    school, _instance, _fwd, _inv, _im, image = setup
    benchmark(lambda: invert(school.sigma1, image))


def test_bench_stylesheet_generation(benchmark, school):
    benchmark(lambda: (forward_stylesheet(school.sigma1),
                       inverse_stylesheet(school.sigma1)))


def main() -> int:
    import time

    import benchlib

    from repro.workloads.library import school_example

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    school = school_example()
    instance = InstanceGenerator(school.classes, seed=6,
                                 max_depth=8 if args.smoke else 12,
                                 star_mean=5.0).generate()
    forward = forward_stylesheet(school.sigma1)
    inverse = inverse_stylesheet(school.sigma1)
    image = InstMap(school.sigma1).apply(instance).tree
    repeats = 3 if args.smoke else 10
    started = time.perf_counter()
    for _ in range(repeats):
        via_xslt = apply_stylesheet(forward, instance)
        recovered = apply_stylesheet(inverse, image)
    wall = time.perf_counter() - started
    rows = [{
        "|T1|": tree_size(instance),
        "|T2|": tree_size(image),
        "xslt-forward == InstMap": tree_equal(via_xslt, image),
        "xslt-inverse == source": tree_equal(recovered, instance),
        "forward-rules": len(forward.rules),
        "inverse-rules": len(inverse.rules),
    }]
    print(format_table(rows, title="[E9] generated XSLT vs native "
                                   "algorithms"))
    result = benchlib.record(
        "xslt_engine", args,
        ops_per_sec=2 * repeats / wall if wall > 0 else 0.0,
        wall_time_s=wall,
        correct=(rows[0]["xslt-forward == InstMap"]
                 and rows[0]["xslt-inverse == source"]),
        extra={"rows": rows, "applications": 2 * repeats})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
