"""The pre-fork serve fleet: identity, routing, hot reload, crashes.

The contract under test:

* a fleet of N workers answers byte-identically to the single-process
  daemon and to direct Engine calls, under concurrent clients, with
  zero JSON parses at every worker's warm start;
* the consistent-hash ring is deterministic and stable, and the
  routing client really lands an embedding's requests on its owning
  worker (observed via per-worker direct-port ``/metrics``);
* repacking the store mid-serve hot-reloads every worker — no request
  is dropped while the generation flips and the new artifacts serve;
* a SIGKILL'd worker is reaped and restarted by the supervisor (shared
  restart counter increments, service continues on the same port).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.dtd.generate import InstanceGenerator
from repro.engine import Engine, pack_store
from repro.serve import (
    FleetClient,
    FleetServer,
    HashRing,
    ReproServer,
    ServeClient,
)
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="fleet needs fork")

WORKERS = 2


def _wait_for_fleet(fleet: FleetServer, timeout: float = 30.0) -> None:
    """Block until every worker answers on its direct port."""
    for port in fleet.worker_ports:
        client = ServeClient(fleet.host, port, timeout=5.0)
        deadline = time.monotonic() + timeout
        while True:
            try:
                client.healthz()
                break
            except OSError:
                assert time.monotonic() < deadline, \
                    f"worker on port {port} never came up"
                time.sleep(0.05)
        client.close()


def _wait_until(predicate, timeout: float = 15.0, message: str = "") -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, message or "condition timeout"
        time.sleep(0.05)


@pytest.fixture(scope="module")
def store_path(school, tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet") / "store"
    engine = Engine()
    engine.compile_embedding(school.sigma1, ensure_valid=True)
    engine.save_store(path)
    pack_store(path)
    return path


@pytest.fixture()
def fleet(store_path):
    with FleetServer(store_path, workers=WORKERS, port=0,
                     reload_interval=0.05) as running:
        _wait_for_fleet(running)
        yield running


def _documents(school, count):
    return [to_string(InstanceGenerator(school.classes, seed=seed,
                                        max_depth=8,
                                        star_mean=2.0).generate())
            for seed in range(count)]


# -- the hash ring ------------------------------------------------------------

def test_ring_is_deterministic_and_total():
    ring_a = HashRing([0, 1, 2, 3])
    ring_b = HashRing([0, 1, 2, 3])
    keys = [f"fingerprint-{i}" for i in range(500)]
    assert [ring_a.owner(k) for k in keys] == \
        [ring_b.owner(k) for k in keys]
    slices = ring_a.slices(keys)
    assert sum(len(part) for part in slices.values()) == len(keys)
    # Every node owns a non-trivial share at 64 replicas.
    assert all(len(part) > 0 for part in slices.values())


def test_ring_is_stable_under_node_removal():
    """Consistent hashing: dropping one node only remaps the keys it
    owned — every other key keeps its owner."""
    keys = [f"fingerprint-{i}" for i in range(500)]
    full = HashRing([0, 1, 2, 3])
    reduced = HashRing([0, 1, 2])
    moved = [k for k in keys
             if full.owner(k) != 3 and reduced.owner(k) != full.owner(k)]
    assert moved == []


def test_ring_rejects_empty_node_set():
    with pytest.raises(ValueError):
        HashRing([])


# -- identity: fleet vs single process vs direct engine -----------------------

def test_fleet_is_byte_identical_to_single_process(school, store_path,
                                                   fleet):
    """Concurrent clients against the fleet's shared port get responses
    byte-identical to the single-process daemon and the direct Engine —
    and every worker warm-started with zero JSON parses."""
    documents = _documents(school, 4)
    engine = Engine()
    expected = [to_string(engine.apply_embedding(school.sigma1,
                                                 parse_xml(xml)).tree)
                for xml in documents]
    with ReproServer(store=store_path, port=0) as single:
        single_client = ServeClient.for_server(single)
        single_served = [single_client.map(xml=xml)["result"]["output"]
                         for xml in documents]
    assert single_served == expected

    errors: list[str] = []

    def hammer(offset: int) -> None:
        client = ServeClient(fleet.host, fleet.port)
        try:
            for round_no in range(8):
                index = (offset + round_no) % len(documents)
                served = client.map(xml=documents[index])["result"]
                if not (served["ok"]
                        and served["output"] == expected[index]):
                    errors.append(f"diverged on document {index}")
        except Exception as exc:
            errors.append(f"client {offset}: {exc}")
        finally:
            client.close()

    threads = [threading.Thread(target=hammer, args=(offset,))
               for offset in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []

    for port in fleet.worker_ports:
        health = ServeClient(fleet.host, port).healthz()
        assert health["store_json_parses"] == 0
        assert health["generation"] == fleet.generation


def test_routing_client_lands_on_ring_owner(school, fleet):
    """FleetClient sends an embedding's requests to the worker the
    ring names — confirmed by that worker's own /metrics."""
    client = FleetClient.for_server(fleet)
    fingerprint = school.sigma1.fingerprint()
    owner = client.owner(fingerprint)
    assert owner in client.workers
    before = {wid: c.metrics()["requests"].get("/v1/map",
                                               {}).get("requests", 0)
              for wid, c in client.workers.items()}
    xml = _documents(school, 1)[0]
    for _ in range(3):
        served = client.map(xml=xml, embedding=fingerprint)["result"]
        assert served["ok"]
    after = {wid: c.metrics()["requests"].get("/v1/map",
                                              {}).get("requests", 0)
             for wid, c in client.workers.items()}
    assert after[owner] - before[owner] == 3
    assert all(after[wid] == before[wid]
               for wid in after if wid != owner)
    client.close()


def test_fleet_metrics_aggregate_covers_all_workers(fleet):
    client = FleetClient.for_server(fleet)
    client.healthz()  # at least one countable request on the fleet
    merged = client.fleet_metrics()
    assert merged["fleet"] is True
    assert len(merged["workers"]) == WORKERS
    assert all(row["ok"] for row in merged["workers"])
    aggregate = merged["aggregate"]["requests"]
    assert aggregate.get("/healthz", {}).get("requests", 0) >= 1
    client.close()


# -- hot reload ---------------------------------------------------------------

def test_hot_reload_serves_new_embedding_without_dropping(school,
                                                          tmp_path):
    """While concurrent clients hammer the fleet, the store gains an
    embedding and is repacked: every worker flips to the new
    generation, no in-flight or subsequent request fails, and the new
    embedding serves byte-identically to a direct engine."""
    store = tmp_path / "store"
    engine = Engine()
    engine.compile_embedding(school.sigma1, ensure_valid=True)
    engine.save_store(store)
    pack_store(store)

    documents = _documents(school, 3)
    reference = Engine()
    expected = [to_string(reference.apply_embedding(
        school.sigma1, parse_xml(xml)).tree) for xml in documents]
    sigma1 = school.sigma1.fingerprint()
    sigma2 = school.sigma2.fingerprint()

    with FleetServer(store, workers=WORKERS, port=0,
                     reload_interval=0.05) as fleet:
        _wait_for_fleet(fleet)
        stop = threading.Event()
        errors: list[str] = []
        served = [0]

        def hammer(offset: int) -> None:
            client = ServeClient(fleet.host, fleet.port)
            count = 0
            try:
                while not stop.is_set():
                    index = (offset + count) % len(documents)
                    result = client.map(xml=documents[index],
                                        embedding=sigma1)["result"]
                    if not (result["ok"]
                            and result["output"] == expected[index]):
                        errors.append(f"diverged on document {index}")
                    count += 1
            except Exception as exc:
                errors.append(f"client {offset}: {exc}")
            finally:
                client.close()
            served[0] += count

        threads = [threading.Thread(target=hammer, args=(offset,))
                   for offset in range(3)]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.2)  # load flowing on generation 1
            extra = Engine()
            extra.compile_embedding(school.sigma2, ensure_valid=True)
            extra.save_store(store)
            pack_store(store)  # publish generation 2 mid-serve

            def all_reloaded() -> bool:
                return all(
                    ServeClient(fleet.host,
                                port).healthz()["generation"] == 2
                    for port in fleet.worker_ports)

            _wait_until(all_reloaded,
                        message="workers never adopted generation 2")
            time.sleep(0.2)  # keep hammering across the flip
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        assert errors == []          # zero dropped / stale requests
        assert served[0] > 0

        # The new embedding serves byte-identically to a direct engine.
        student_xml = to_string(InstanceGenerator(
            school.students, seed=1, max_depth=8,
            star_mean=2.0).generate())
        direct = to_string(reference.apply_embedding(
            school.sigma2, parse_xml(student_xml)).tree)
        client = ServeClient(fleet.host, fleet.port)
        result = client.map(xml=student_xml, embedding=sigma2)["result"]
        assert result["ok"] and result["output"] == direct
        health = client.healthz()
        assert health["generation"] == 2
        assert health["embeddings"] == 2
        assert health["reloads"] == 1
        client.close()


# -- crash supervision --------------------------------------------------------

def test_supervisor_restarts_killed_worker(school, fleet):
    """SIGKILL one worker: the supervisor reaps it, increments the
    shared restart counter, re-forks onto the same sockets, and the
    fleet keeps serving correct responses on the same ports."""
    xml = _documents(school, 1)[0]
    engine = Engine()
    expected = to_string(engine.apply_embedding(school.sigma1,
                                                parse_xml(xml)).tree)
    assert fleet.restart_count() == 0
    victim_pid = fleet.pids[0]
    victim_port = fleet.worker_ports[0]
    os.kill(victim_pid, signal.SIGKILL)

    _wait_until(lambda: fleet.restart_count() >= 1,
                message="supervisor never restarted the worker")
    _wait_for_fleet(fleet)  # replacement serves on the same ports
    assert fleet.pids[0] != victim_pid

    replacement = ServeClient(fleet.host, victim_port)
    health = replacement.healthz()
    assert health["worker"] == 0
    assert health["pid"] == fleet.pids[0]
    assert health["store_json_parses"] == 0
    served = replacement.map(xml=xml)["result"]
    assert served["ok"] and served["output"] == expected
    replacement.close()

    # The shared port still answers too (kernel backlog carried over).
    shared = ServeClient(fleet.host, fleet.port)
    assert shared.map(xml=xml)["result"]["output"] == expected
    shared.close()

    # /fleet surfaces the restart to clients.
    topology = shared.fleet()
    assert topology["restarts"] >= 1


# -- degradation --------------------------------------------------------------

def test_fleet_client_degrades_to_single_process(school, store_path):
    """Against a plain single-process daemon, FleetClient routes
    everything to the shared port."""
    with ReproServer(store=store_path, port=0) as server:
        client = FleetClient.for_server(server)
        assert client.workers == {}
        assert client.owner(school.sigma1.fingerprint()) is None
        xml = _documents(school, 1)[0]
        engine = Engine()
        expected = to_string(engine.apply_embedding(
            school.sigma1, parse_xml(xml)).tree)
        assert client.map(xml=xml)["result"]["output"] == expected
        client.close()
