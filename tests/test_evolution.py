"""The schema-evolution service: verdict taxonomy, lineage store,
serve/CLI surfaces and the typed client results.

Invariants pinned here:

* every curated mutation case (:mod:`repro.workloads.evolution`)
  yields exactly its known-good verdicts, and one broken query in a
  batch never fails the others;
* the ``/v1/evolve`` response — single daemon and (where ``fork``
  exists) pre-fork fleet — is byte-identical to the direct
  ``Engine.evolve`` payload under sorted-key JSON;
* a store written before the lineage section existed (the PR 2–7
  layout) warm-starts, serves, and gains its first lineage edge *in
  place* without any existing artifact file being rewritten;
* the declarative protocol field specs keep the historical error
  codes and messages byte-for-byte.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.engine import ArtifactStore, Engine, pack_store
from repro.engine.store import lineage_digest
from repro.evolution import (
    BROKEN,
    STILL_VALID,
    TRANSLATABLE,
    LineageEdge,
    evolve,
    evolve_and_record,
    lineage_edges,
    record_lineage,
    successors,
)
from repro.core.errors import EmbeddingError
from repro.cli import main as cli_main
from repro.dtd.serialize import dtd_to_text
from repro.serve import (
    EvolveResult,
    FleetServer,
    ProtocolError,
    ReproServer,
    ServeClient,
    ServeError,
    ServeResult,
)
from repro.serve.protocol import ENDPOINT_FIELDS, FieldSpec, parse_fields
from repro.workloads import evolution as workloads_evolution
from repro.workloads.evolution import evolution_cases, scaled_case

CASES = {case.name: case for case in evolution_cases()}


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


# -- verdict taxonomy ---------------------------------------------------------

def test_workload_taxonomy_matches_canonical_constants():
    # workloads/ sits below the serving layers and mirrors the verdict
    # names literally; drift would silently break every expectation.
    assert workloads_evolution.STILL_VALID == STILL_VALID
    assert workloads_evolution.TRANSLATABLE == TRANSLATABLE
    assert workloads_evolution.BROKEN == BROKEN


@pytest.mark.parametrize("name", sorted(CASES))
def test_curated_case_verdicts(name):
    case = CASES[name]
    report = evolve(case.old, case.new, case.queries,
                    embedding=case.embedding)
    assert {v.query: v.verdict for v in report.verdicts} == case.expected
    assert [v.query for v in report.verdicts] == list(case.queries)
    counts = report.counts()
    assert sum(counts.values()) == len(case.queries)


def test_rename_attaches_translation_and_isolates_parse_error():
    case = CASES["mondial-rename"]
    report = evolve(case.old, case.new, case.queries,
                    embedding=case.embedding)
    by_query = {v.query: v for v in report.verdicts}
    translated = by_query["country/cname/text()"]
    assert translated.verdict == TRANSLATABLE
    assert translated.translation == "country/country_name/text()"
    assert translated.ok
    # The malformed query is a structured broken verdict, not a fault,
    # and the queries around it still got real verdicts.
    bad = by_query["///"]
    assert bad.verdict == BROKEN
    assert bad.reason == "parse-error"
    assert not bad.ok
    assert by_query["country/capital/text()"].verdict == STILL_VALID


def test_break_case_reports_no_embedding():
    case = CASES["mondial-break"]
    report = evolve(case.old, case.new, case.queries)
    assert not report.found
    assert report.embedding is None
    assert all(v.verdict == BROKEN and v.reason == "no-embedding"
               for v in report.verdicts)


def test_mismatched_embedding_is_rejected():
    rename = CASES["mondial-rename"]
    extend = CASES["orders-extend"]
    with pytest.raises(EmbeddingError):
        evolve(rename.old, rename.new, rename.queries,
               embedding=extend.embedding)


def test_engine_evolve_matches_direct_call():
    case = scaled_case(6, seed=2)
    engine = Engine()
    via_engine = engine.evolve(case.old, case.new, case.queries,
                               embedding=case.embedding)
    direct = evolve(case.old, case.new, case.queries, engine=engine,
                    embedding=case.embedding)
    assert canonical(via_engine.to_payload()) == \
        canonical(direct.to_payload())
    # Determinism: a fresh engine reproduces the bytes.
    fresh = evolve(case.old, case.new, case.queries,
                   embedding=case.embedding)
    assert canonical(fresh.to_payload()) == \
        canonical(direct.to_payload())


# -- lineage ------------------------------------------------------------------

def test_lineage_roundtrip(tmp_path):
    case = CASES["mondial-rename"]
    store = ArtifactStore(tmp_path / "store")
    edge = record_lineage(store, case.old, case.new, case.embedding,
                          provenance={"method": "given"})
    assert edge.old == case.old.fingerprint()
    assert edge.new == case.new.fingerprint()
    assert edge.embedding == case.embedding.fingerprint()
    assert edge.digest == lineage_digest(edge.old, edge.new,
                                         edge.embedding)
    # Reopen: the edge persists with its provenance, typed accessors
    # agree with the raw store payload.
    reopened = ArtifactStore(tmp_path / "store", create=False)
    edges = lineage_edges(reopened)
    assert edges == [edge]
    assert successors(reopened, edge.old) == [edge]
    assert successors(reopened, edge.new) == []
    payload = reopened.get_lineage(edge.digest)
    assert LineageEdge.from_payload(payload) == edge
    assert payload["provenance"] == {"method": "given"}
    # Idempotent: recording the same bump again adds nothing.
    record_lineage(reopened, case.old, case.new, case.embedding,
                   provenance={"method": "given"})
    assert len(lineage_edges(reopened)) == 1


def test_evolve_and_record_carries_verdict_provenance(tmp_path):
    case = CASES["mondial-rename"]
    store = ArtifactStore(tmp_path / "store")
    report, edge = evolve_and_record(store, case.old, case.new,
                                     case.queries,
                                     embedding=case.embedding)
    assert edge.provenance["counts"] == report.counts()
    assert edge.provenance["queries"] == len(case.queries)
    assert edge.provenance["found"] is True
    # The edge ties the stored artifacts together by fingerprint.
    assert store.get_schema(edge.old).fingerprint() == edge.old
    assert store.get_embedding(edge.embedding).fingerprint() == \
        edge.embedding
    # A bump with no embedding is still lineage worth remembering.
    broken = CASES["mondial-break"]
    report2, edge2 = evolve_and_record(store, broken.old, broken.new,
                                       broken.queries)
    assert not report2.found and edge2.embedding is None
    assert len(lineage_edges(store)) == 2


def test_pre_lineage_store_gains_first_edge_in_place(tmp_path):
    """A store laid out before the lineage section existed keeps
    reading back cleanly, serves, and gains its first edge without any
    existing artifact file being rewritten."""
    case = CASES["mondial-rename"]
    store_path = tmp_path / "store"
    engine = Engine()
    engine.compile_embedding(case.embedding, ensure_valid=True)
    engine.save_store(store_path)
    # The seed layout: no lineage key anywhere in the manifest (the
    # exact PR 2-7 on-disk shape, not an empty section).
    manifest = json.loads((store_path / "manifest.json").read_text())
    assert "lineage" not in manifest
    before = {path: (path.read_bytes(), path.stat().st_mtime_ns)
              for path in sorted(store_path.rglob("*"))
              if path.is_file() and path.name != "manifest.json"}
    # Warm-start and serve from the pre-lineage layout.
    warm = Engine.warm_start(store_path)
    assert warm.compile_embedding(case.embedding) is not None
    reopened = ArtifactStore(store_path, create=False)
    assert lineage_edges(reopened) == []
    assert reopened.describe()["lineage"] == []
    # First edge lands in place.
    report, edge = evolve_and_record(reopened, case.old, case.new,
                                     case.queries,
                                     embedding=case.embedding)
    assert report.found
    after = {path: (path.read_bytes(), path.stat().st_mtime_ns)
             for path in sorted(store_path.rglob("*"))
             if path.is_file() and path.name != "manifest.json"}
    new_files = set(after) - set(before)
    assert new_files == {store_path / "lineage" / f"{edge.digest}.json"}
    for path, snapshot in before.items():
        assert after[path] == snapshot, f"{path} was rewritten"
    manifest = json.loads((store_path / "manifest.json").read_text())
    assert list(manifest["lineage"]) == [edge.digest]
    # And the grown store still round-trips.
    assert lineage_edges(ArtifactStore(store_path, create=False)) == \
        [edge]


# -- serve surface ------------------------------------------------------------

def _evolution_store(tmp_path, case):
    store_path = tmp_path / "store"
    engine = Engine()
    engine.compile_embedding(case.embedding, ensure_valid=True)
    engine.save_store(store_path)
    return store_path


def test_served_evolve_is_byte_identical(tmp_path):
    case = CASES["mondial-rename"]
    direct = canonical(Engine().evolve(case.old, case.new, case.queries,
                                       embedding=case.embedding)
                       .to_payload())
    store_path = _evolution_store(tmp_path, case)
    with ReproServer(store=store_path, port=0) as server:
        client = ServeClient.for_server(server)
        served = client.evolve(case.old.fingerprint(),
                               case.new.fingerprint(),
                               queries=list(case.queries),
                               embedding=case.embedding.fingerprint())
        assert isinstance(served, EvolveResult)
        assert canonical(served.raw) == direct
        # Inline schema text reaches the same verdicts.
        inline = client.evolve(dtd_to_text(case.old),
                               dtd_to_text(case.new),
                               queries=list(case.queries),
                               embedding=case.embedding.fingerprint(),
                               format="dtd")
        assert canonical(inline.raw) == direct
        client.close()


@pytest.mark.skipif(not hasattr(os, "fork"),
                    reason="pre-fork fleet needs os.fork")
def test_fleet_evolve_is_byte_identical(tmp_path):
    case = CASES["mondial-rename"]
    direct = canonical(Engine().evolve(case.old, case.new, case.queries,
                                       embedding=case.embedding)
                       .to_payload())
    store_path = _evolution_store(tmp_path, case)
    pack_store(store_path)
    with FleetServer(store_path, workers=2, port=0) as fleet:
        client = ServeClient(fleet.host, fleet.port, timeout=30.0)
        served = client.evolve(case.old.fingerprint(),
                               case.new.fingerprint(),
                               queries=list(case.queries),
                               embedding=case.embedding.fingerprint())
        assert canonical(served.raw) == direct
        client.close()


def test_served_evolve_rejects_mismatched_embedding(tmp_path):
    # A loaded embedding whose endpoints are not the named schemas is
    # a 400 invalid-embedding, not a 500.
    case = CASES["mondial-rename"]
    store_path = _evolution_store(tmp_path, case)
    with ReproServer(store=store_path, port=0) as server:
        client = ServeClient.for_server(server)
        with pytest.raises(ServeError) as excinfo:
            client.evolve(case.new.fingerprint(),
                          case.old.fingerprint(),
                          query="country/capital/text()",
                          embedding=case.embedding.fingerprint())
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-embedding"
        client.close()


def test_evolve_field_validation_over_http(tmp_path):
    case = CASES["mondial-rename"]
    store_path = _evolution_store(tmp_path, case)
    with ReproServer(store=store_path, port=0) as server:
        client = ServeClient.for_server(server)
        checks = [
            ({"old": case.old.fingerprint(),
              "new": case.new.fingerprint(),
              "query": "country/capital/text()", "validate": "yes"},
             "bad-request", "'validate' must be a boolean"),
            ({"old": case.old.fingerprint(),
              "new": case.new.fingerprint(),
              "query": "country/capital/text()", "seed": "0"},
             "bad-request", "'seed' must be an integer"),
            ({"old": case.old.fingerprint(),
              "new": case.new.fingerprint(),
              "query": "country/capital/text()", "format": "relaxng"},
             "bad-format", "unknown schema format 'relaxng'"),
            ({"old": case.old.fingerprint(),
              "new": case.new.fingerprint()},
             "bad-request", "expected 'query' or a non-empty 'queries' "
                            "list"),
        ]
        for payload, code, message in checks:
            with pytest.raises(ServeError) as excinfo:
                client.request("POST", "/v1/evolve", payload)
            assert excinfo.value.status == 400
            assert excinfo.value.code == code
            assert excinfo.value.message.startswith(message)
        client.close()


# -- declarative protocol fields ----------------------------------------------

def test_parse_fields_preserves_historical_error_shapes():
    specs = ENDPOINT_FIELDS["/v1/evolve"]
    # Defaults applied on an empty payload.
    parsed = parse_fields({}, specs, known_formats=["dtd"])
    assert parsed == {"embedding": None, "validate": True,
                      "method": None, "seed": 0, "restarts": 20,
                      "samples": None, "format": None}
    # The historical messages, byte-for-byte.
    with pytest.raises(ProtocolError) as excinfo:
        parse_fields({"validate": 1}, specs)
    assert excinfo.value.code == "bad-request"
    assert excinfo.value.message == "'validate' must be a boolean"
    with pytest.raises(ProtocolError) as excinfo:
        parse_fields({"restarts": True}, specs)
    assert excinfo.value.message == "'restarts' must be an integer"
    with pytest.raises(ProtocolError) as excinfo:
        parse_fields({"embedding": 7}, specs)
    assert excinfo.value.message == \
        "'embedding' must be a string, not int"
    with pytest.raises(ProtocolError) as excinfo:
        parse_fields({"format": 7}, specs, known_formats=["dtd"])
    assert excinfo.value.code == "bad-format"
    assert excinfo.value.message == "'format' must be a string"
    with pytest.raises(ProtocolError) as excinfo:
        parse_fields({"format": "relaxng"}, specs,
                     known_formats=["dtd", "xsd"])
    assert excinfo.value.code == "bad-format"
    assert excinfo.value.message == \
        "unknown schema format 'relaxng' (expected auto, dtd, xsd)"
    # 'auto' always passes; null means absent for str/format fields.
    assert parse_fields({"format": "auto", "embedding": None}, specs,
                        known_formats=["dtd"])["format"] == "auto"
    # Required fields (none in the current tables) raise bad-request.
    with pytest.raises(ProtocolError) as excinfo:
        parse_fields({}, (FieldSpec("name", "str", required=True),))
    assert excinfo.value.message == "'name' is required"


def test_every_endpoint_has_a_field_table():
    from repro.serve.handlers import _POST_ROUTES
    assert set(ENDPOINT_FIELDS) == set(_POST_ROUTES)


# -- typed client results -----------------------------------------------------

def test_serve_result_is_a_frozen_mapping_view():
    raw = {"failures": 0, "result": {"ok": True, "output": "<a/>"}}
    result = ServeResult(raw)
    assert result.failures == 0
    assert result["result"]["output"] == "<a/>"
    assert result.raw == raw
    assert result == raw and result == ServeResult(raw)
    assert "failures" in result and len(result) == 2
    assert sorted(result) == ["failures", "result"]
    assert result.get("missing", 42) == 42
    with pytest.raises(AttributeError):
        result.failures = 1
    with pytest.raises(AttributeError):
        result.missing
    assert "failures" in repr(result)


def test_evolve_result_helpers():
    payload = {"old": "a", "new": "b", "embedding": None, "found": True,
               "method": "given",
               "counts": {STILL_VALID: 1, TRANSLATABLE: 0, BROKEN: 1},
               "verdicts": [
                   {"query": "q1", "verdict": STILL_VALID, "ok": True},
                   {"query": "q2", "verdict": BROKEN, "ok": False}]}
    result = EvolveResult(payload)
    assert result.counts[BROKEN] == 1
    assert [row["query"] for row in result.verdicts] == ["q1", "q2"]
    assert [row["query"] for row in result.broken()] == ["q2"]


def test_client_methods_return_typed_results(tmp_path, school):
    with ReproServer(embedding=school.sigma1, port=0) as server:
        client = ServeClient.for_server(server)
        assert isinstance(client.healthz(), ServeResult)
        translated = client.translate(query="class/cno/text()")
        assert isinstance(translated, ServeResult)
        assert translated.failures == 0
        assert translated["result"]["ok"] is True
        client.close()


# -- CLI ----------------------------------------------------------------------

@pytest.fixture()
def evolve_files(tmp_path):
    case = CASES["mondial-rename"]
    old = tmp_path / "old.dtd"
    new = tmp_path / "new.dtd"
    old.write_text(dtd_to_text(case.old))
    new.write_text(dtd_to_text(case.new))
    queries = tmp_path / "queries.txt"
    queries.write_text("# stored workload\n"
                       "country/cname/text()\n\n"
                       "country/capital/text()\n")
    from repro.cli import embedding_to_json
    embedding = tmp_path / "embedding.json"
    embedding.write_text(embedding_to_json(case.embedding))
    return case, old, new, queries, embedding


def test_cli_evolve_reports_and_records(tmp_path, capsys, evolve_files):
    case, old, new, queries, embedding = evolve_files
    store = tmp_path / "store"
    exit_code = cli_main(["evolve", str(old), str(new),
                          "--queries", str(queries),
                          "--embedding", str(embedding),
                          "--store", str(store), "--json"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["found"] is True
    assert payload["counts"] == {STILL_VALID: 1, TRANSLATABLE: 1,
                                 BROKEN: 0}
    verdicts = {row["query"]: row for row in payload["verdicts"]}
    assert verdicts["country/cname/text()"]["translation"] == \
        "country/country_name/text()"
    # The lineage edge landed in the store and inspect surfaces it.
    edge_digest = payload["lineage"]
    assert lineage_edges(ArtifactStore(store, create=False))[0].digest \
        == edge_digest
    assert cli_main(["store", "inspect", str(store), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert [row["digest"] for row in summary["lineage"]] == [edge_digest]
    assert all(row["format"] == "dtd" and row["source"]
               for row in summary["schemas"])
    assert cli_main(["store", "inspect", str(store)]) == 0
    assert "lineage" in capsys.readouterr().out


def test_cli_evolve_exit_codes(tmp_path, capsys, evolve_files):
    case, old, new, queries, embedding = evolve_files
    # A broken query in the workload: exit 1, others still served.
    bad = tmp_path / "bad.txt"
    bad.write_text("country/cname/text()\n///\n")
    assert cli_main(["evolve", str(old), str(new), "--queries",
                     str(bad), "--embedding", str(embedding)]) == 1
    out = capsys.readouterr().out
    assert "translatable" in out and "parse-error" in out
    # Malformed inputs keep the exit-2 contract.
    assert cli_main(["evolve", str(old), str(new), "--queries",
                     str(tmp_path / "missing.txt")]) == 2
    empty = tmp_path / "empty.txt"
    empty.write_text("# nothing\n")
    assert cli_main(["evolve", str(old), str(new), "--queries",
                     str(empty)]) == 2
    assert "repro: error:" in capsys.readouterr().err


def test_cli_evolve_json_query_file(tmp_path, capsys, evolve_files):
    case, old, new, _, embedding = evolve_files
    queries = tmp_path / "workload.json"
    queries.write_text(json.dumps(["country/capital/text()"]))
    assert cli_main(["evolve", str(old), str(new), "--queries",
                     str(queries), "--embedding", str(embedding)]) == 0
    assert "still-valid" in capsys.readouterr().out
