"""Unit tests: the XML parser and serializer round-trip."""

import pytest

from repro.xtree.nodes import tree_equal
from repro.xtree.parser import XMLParseError, parse_xml
from repro.xtree.serialize import to_string


def test_basic_document():
    tree = parse_xml("<class><cno>CS331</cno><title>DB</title></class>")
    assert tree.tag == "class"
    assert tree.children_tagged("cno")[0].child_text() == "CS331"


def test_self_closing_and_empty():
    tree = parse_xml("<r><a/><b></b></r>")
    assert [c.tag for c in tree.element_children()] == ["a", "b"]
    assert all(not c.children for c in tree.element_children())


def test_entities_decoded():
    tree = parse_xml("<a>x &amp; y &lt;z&gt; &#65;&#x42;</a>")
    assert tree.child_text() == "x & y <z> AB"


def test_unknown_entity_rejected():
    with pytest.raises(XMLParseError):
        parse_xml("<a>&nope;</a>")


def test_whitespace_between_elements_dropped():
    tree = parse_xml("<r>\n  <a>x</a>\n  <b>y</b>\n</r>")
    assert [c.tag for c in tree.element_children()] == ["a", "b"]


def test_keep_whitespace_mode():
    tree = parse_xml("<a> x </a>", keep_whitespace=True)
    assert tree.child_text() == " x "


def test_comments_and_pis_skipped():
    tree = parse_xml("<?xml version='1.0'?><!-- hi --><r><!-- x --><a/></r>")
    assert [c.tag for c in tree.element_children()] == ["a"]


def test_doctype_skipped():
    tree = parse_xml("<!DOCTYPE r [<!ELEMENT r (a)>]><r><a/></r>")
    assert tree.tag == "r"


def test_cdata():
    tree = parse_xml("<a><![CDATA[<raw> & stuff]]></a>")
    assert tree.child_text() == "<raw> & stuff"


def test_mismatched_tags_rejected():
    with pytest.raises(XMLParseError) as err:
        parse_xml("<a><b></a></b>")
    assert "mismatched" in str(err.value)


def test_unterminated_rejected():
    with pytest.raises(XMLParseError):
        parse_xml("<a><b>")


def test_trailing_content_rejected():
    with pytest.raises(XMLParseError):
        parse_xml("<a/><b/>")


def test_attributes_rejected_by_default():
    with pytest.raises(XMLParseError) as err:
        parse_xml('<a x="1"/>')
    assert "attribute" in str(err.value)


def test_attributes_ignored_when_allowed():
    tree = parse_xml('<a x="1" y=\'2\'><b/></a>', allow_attributes=True)
    assert [c.tag for c in tree.element_children()] == ["b"]


def test_parse_error_reports_position():
    with pytest.raises(XMLParseError) as err:
        parse_xml("<a>\n<b>oops</a>")
    assert "line 2" in str(err.value)


def test_roundtrip_pretty_and_compact():
    source = "<r><a>x &amp; y</a><b><c/></b></r>"
    tree = parse_xml(source)
    assert tree_equal(parse_xml(to_string(tree)), tree)
    assert to_string(tree, indent=None) == source


def test_serialize_show_ids():
    tree = parse_xml("<a><b/></a>")
    rendered = to_string(tree, show_ids=True)
    assert f'id="{tree.node_id}"' in rendered
