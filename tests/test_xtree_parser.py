"""Unit tests: the XML parser and serializer round-trip."""

import pytest

from repro.xtree.nodes import tree_equal
from repro.xtree.parser import XMLParseError, parse_xml
from repro.xtree.serialize import to_string


def test_basic_document():
    tree = parse_xml("<class><cno>CS331</cno><title>DB</title></class>")
    assert tree.tag == "class"
    assert tree.children_tagged("cno")[0].child_text() == "CS331"


def test_self_closing_and_empty():
    tree = parse_xml("<r><a/><b></b></r>")
    assert [c.tag for c in tree.element_children()] == ["a", "b"]
    assert all(not c.children for c in tree.element_children())


def test_entities_decoded():
    tree = parse_xml("<a>x &amp; y &lt;z&gt; &#65;&#x42;</a>")
    assert tree.child_text() == "x & y <z> AB"


def test_unknown_entity_rejected():
    with pytest.raises(XMLParseError):
        parse_xml("<a>&nope;</a>")


def test_whitespace_between_elements_dropped():
    tree = parse_xml("<r>\n  <a>x</a>\n  <b>y</b>\n</r>")
    assert [c.tag for c in tree.element_children()] == ["a", "b"]


def test_keep_whitespace_mode():
    tree = parse_xml("<a> x </a>", keep_whitespace=True)
    assert tree.child_text() == " x "


def test_comments_and_pis_skipped():
    tree = parse_xml("<?xml version='1.0'?><!-- hi --><r><!-- x --><a/></r>")
    assert [c.tag for c in tree.element_children()] == ["a"]


def test_doctype_skipped():
    tree = parse_xml("<!DOCTYPE r [<!ELEMENT r (a)>]><r><a/></r>")
    assert tree.tag == "r"


def test_cdata():
    tree = parse_xml("<a><![CDATA[<raw> & stuff]]></a>")
    assert tree.child_text() == "<raw> & stuff"


def test_mismatched_tags_rejected():
    with pytest.raises(XMLParseError) as err:
        parse_xml("<a><b></a></b>")
    assert "mismatched" in str(err.value)


def test_unterminated_rejected():
    with pytest.raises(XMLParseError):
        parse_xml("<a><b>")


def test_trailing_content_rejected():
    with pytest.raises(XMLParseError):
        parse_xml("<a/><b/>")


def test_attributes_rejected_by_default():
    with pytest.raises(XMLParseError) as err:
        parse_xml('<a x="1"/>')
    assert "attribute" in str(err.value)


def test_attributes_ignored_when_allowed():
    tree = parse_xml('<a x="1" y=\'2\'><b/></a>', allow_attributes=True)
    assert [c.tag for c in tree.element_children()] == ["b"]


def test_parse_error_reports_position():
    with pytest.raises(XMLParseError) as err:
        parse_xml("<a>\n<b>oops</a>")
    assert "line 2" in str(err.value)


def test_roundtrip_pretty_and_compact():
    source = "<r><a>x &amp; y</a><b><c/></b></r>"
    tree = parse_xml(source)
    assert tree_equal(parse_xml(to_string(tree)), tree)
    assert to_string(tree, indent=None) == source


def test_serialize_show_ids():
    tree = parse_xml("<a><b/></a>")
    rendered = to_string(tree, show_ids=True)
    assert f'id="{tree.node_id}"' in rendered


# -- hostile inputs: always XMLParseError, never a raw ValueError ------------

def test_malformed_charref_hex_digits():
    with pytest.raises(XMLParseError) as err:
        parse_xml("<a>&#xZZ;</a>")
    assert "character reference" in str(err.value)
    assert "line 1" in str(err.value)


def test_malformed_charref_empty():
    with pytest.raises(XMLParseError):
        parse_xml("<a>&#;</a>")


def test_charref_out_of_unicode_range():
    with pytest.raises(XMLParseError) as err:
        parse_xml("<a>&#x110000;</a>")
    assert "Unicode range" in str(err.value)
    with pytest.raises(XMLParseError):
        parse_xml("<a>&#1114112;</a>")  # the same code point, decimal


def test_charref_negative_rejected():
    with pytest.raises(XMLParseError):
        parse_xml("<a>&#-65;</a>")


def test_charref_boundaries_accepted():
    assert parse_xml("<a>&#x41;&#66;</a>").child_text() == "AB"
    assert parse_xml("<a>&#x10FFFF;</a>").child_text() == "\U0010ffff"


def test_charref_surrogates_rejected():
    # XML's Char production excludes surrogates, and chr(0xD800) would
    # produce a string that cannot even be UTF-8 encoded on output.
    for snippet in ("<a>&#xD800;</a>", "<a>&#xDFFF;</a>", "<a>&#55296;</a>"):
        with pytest.raises(XMLParseError):
            parse_xml(snippet)


def test_digit_leading_name_rejected():
    # dtd/parser's _NAME_RE ([A-Za-z_][\w.-]*) can never declare <1abc>,
    # so the document parser must reject it too.
    with pytest.raises(XMLParseError):
        parse_xml("<1abc></1abc>")


def test_punctuation_leading_names_rejected():
    for source in ("<-a/>", "<.a/>", "<a><2b/></a>"):
        with pytest.raises(XMLParseError):
            parse_xml(source)


def test_underscore_leading_name_accepted():
    assert parse_xml("<_a><b.c-d/></_a>").tag == "_a"


HOSTILE_SNIPPETS = [
    "<a>&#xZZ;</a>",
    "<a>&#;</a>",
    "<a>&#x110000;</a>",
    "<a>&#xFFFFFFFFFFFF;</a>",
    "<a>&#-1;</a>",
    "<a>&#x;</a>",
    "<a>&#xD800;</a>",
    "<1abc></1abc>",
    "<-x/>",
    "<.y/>",
    "<a><1b/></a>",
    "<a>&nope;</a>",
    "<a>&amp</a>",
    "<a><b></a></b>",
    "<a><b>",
    "<a/><b/>",
    "<a",
    "",
    "   ",
    "plain text",
    "<>",
    "<a x=1/>",
    '<a x="1"/>',
]


@pytest.mark.parametrize("snippet", HOSTILE_SNIPPETS)
def test_hostile_corpus_raises_only_xmlparseerror(snippet):
    """The ingestion contract: any malformed input is XMLParseError —
    a bare ValueError/IndexError from parse_xml is a bug."""
    with pytest.raises(XMLParseError):
        parse_xml(snippet)
