"""Unit tests: DTD normal form, schema graph, edges (Section 2.1)."""

import pytest

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Edge,
    EdgeKind,
    Empty,
    SchemaError,
    Star,
    Str,
    make_dtd,
)
from repro.schema import load_schema


def test_production_shapes():
    assert Str().size() == 1
    assert Empty().size() == 0
    assert Concat(("a", "b")).size() == 2
    assert Disjunction(("a",), optional=True).size() == 2
    assert Star("a").size() == 1


def test_concat_occurrences():
    production = Concat(("a", "b", "a", "a"))
    assert production.occurrence(0) == 1
    assert production.occurrence(2) == 2
    assert production.occurrence(3) == 3
    assert production.occurrence_count("a") == 3
    assert production.index_of_occurrence("a", 2) == 2
    with pytest.raises(SchemaError):
        production.index_of_occurrence("a", 4)


def test_disjunction_rejects_duplicates():
    with pytest.raises(SchemaError):
        Disjunction(("a", "a"))


def test_disjunction_epsilon_marker_normalised():
    production = Disjunction(("a", "#eps"))
    assert production.children == ("a",)
    assert production.optional


def test_concat_rejects_epsilon():
    with pytest.raises(SchemaError):
        Concat(("a", "#eps"))


def test_dangling_reference_rejected():
    with pytest.raises(SchemaError):
        DTD({"r": Concat(("missing",))}, "r")


def test_undefined_root_rejected():
    with pytest.raises(SchemaError):
        DTD({"a": Str()}, "r")


def test_edges_and_kinds():
    dtd = load_schema("""
        r -> a, b, a
        a -> c + d
        b -> e*
        c -> str
        d -> str
        e -> str
    """)
    r_edges = dtd.edges_from("r")
    assert [(e.child, e.kind, e.occ) for e in r_edges] == [
        ("a", EdgeKind.AND, 1), ("b", EdgeKind.AND, 1),
        ("a", EdgeKind.AND, 2)]
    assert dtd.edge("r", "a", 2) == Edge("r", "a", EdgeKind.AND, 2)
    assert dtd.edge("r", "a", 3) is None
    assert dtd.edge_kind("a", "c") is EdgeKind.OR
    assert dtd.edge_kind("b", "e") is EdgeKind.STAR
    assert dtd.edge_kind("r", "zzz") is None


def test_all_edges_count():
    dtd = load_schema("r -> a, b\na -> str\nb -> str")
    assert len(list(dtd.all_edges())) == 2


def test_recursive_detection():
    flat = load_schema("r -> a\na -> str")
    assert not flat.is_recursive()
    loop = load_schema("r -> a\na -> r + eps")
    assert loop.is_recursive()
    self_loop = load_schema("r -> r*")
    assert self_loop.is_recursive()


def test_reachable_types():
    dtd = load_schema("r -> a\na -> str\nzzz -> str", root="r")
    assert dtd.reachable_types() == {"r", "a"}


def test_size_counts_types_and_productions():
    dtd = load_schema("r -> a, b\na -> str\nb -> eps")
    # 3 types + concat(2) + str(1) + eps(0)
    assert dtd.size() == 6


def test_renamed():
    dtd = load_schema("r -> a, a\na -> b + eps\nb -> str")
    renamed = dtd.renamed({"a": "x", "r": "root"})
    assert renamed.root == "root"
    assert renamed.production("root") == Concat(("x", "x"))
    assert renamed.production("x") == Disjunction(("b",), optional=True)


def test_renamed_must_not_merge():
    dtd = load_schema("r -> a, b\na -> str\nb -> str")
    with pytest.raises(SchemaError):
        dtd.renamed({"a": "b"})


def test_with_production():
    dtd = load_schema("r -> a\na -> str")
    updated = dtd.with_production("a", Empty())
    assert isinstance(updated.production("a"), Empty)
    assert isinstance(dtd.production("a"), Str)  # original untouched


def test_make_dtd_mixed_specs():
    dtd = make_dtd("r", r="a, b", a=Str(), b=["c"], c="str")
    assert dtd.production("r") == Concat(("a", "b"))
    assert dtd.production("b") == Concat(("c",))
