"""The serve daemon: transport-layer purity over the engine.

The contract under test: the HTTP service is *only* a transport —
every payload string it returns is byte-identical to the equivalent
direct :class:`Engine` call, including under concurrent clients; batch
items fail individually; malformed requests get structured 4xx errors;
``/metrics`` counts every request; shutdown releases the port.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.dtd.generate import InstanceGenerator
from repro.engine import Engine
from repro.serve import (
    ProtocolError,
    ReproServer,
    ServeClient,
    ServeError,
    ServiceState,
    dispatch,
)
from repro.workloads.library import school_example
from repro.workloads.queries import random_queries
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string


@pytest.fixture(scope="module")
def school():
    return school_example()


@pytest.fixture(scope="module")
def store_path(school, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "store"
    engine = Engine()
    engine.compile_embedding(school.sigma1, ensure_valid=True)
    engine.save_store(path)
    return path


@pytest.fixture()
def server(store_path):
    with ReproServer(store=store_path, port=0) as running:
        yield running


@pytest.fixture()
def client(server):
    return ServeClient.for_server(server)


def _documents(school, count=6):
    return [to_string(InstanceGenerator(school.classes, seed=seed,
                                        max_depth=8,
                                        star_mean=2.0).generate())
            for seed in range(count)]


# -- byte-identity ------------------------------------------------------------

def test_map_is_byte_identical_to_direct_engine(school, client):
    engine = Engine()
    for xml in _documents(school, 3):
        served = client.map(xml=xml)["result"]
        direct = to_string(
            engine.apply_embedding(school.sigma1, parse_xml(xml)).tree)
        assert served["ok"]
        assert served["output"] == direct


def test_translate_is_byte_identical_to_direct_engine(school, client):
    engine = Engine()
    queries = [str(q) for q in random_queries(school.classes, 5, seed=3)]
    queries.append("class[cno/text()='CS331']/(type/regular/prereq/class)*")
    response = client.translate(queries=queries)
    assert response["failures"] == 0
    for item, query in zip(response["results"], queries):
        direct = engine.translate_query(school.sigma1,
                                        query).canonical_describe()
        assert item["ok"]
        assert item["anfa"] == direct


def test_invert_roundtrips_through_the_service(school, client):
    for xml in _documents(school, 2):
        mapped = client.map(xml=xml)["result"]["output"]
        recovered = client.invert(xml=mapped)["result"]["output"]
        engine = Engine()
        assert recovered == to_string(
            engine.invert(school.sigma1, parse_xml(mapped)))


def test_concurrent_clients_see_identical_responses(school, server):
    """≥4 concurrent clients hammering /v1/map and /v1/translate all
    get responses byte-identical to direct Engine calls."""
    documents = _documents(school, 4)
    queries = [str(q) for q in random_queries(school.classes, 4, seed=9)]
    engine = Engine()
    expected_maps = [
        to_string(engine.apply_embedding(school.sigma1,
                                         parse_xml(xml)).tree)
        for xml in documents]
    expected_anfas = [
        engine.translate_query(school.sigma1, query).canonical_describe()
        for query in queries]

    errors: list[str] = []

    def worker(offset: int) -> None:
        client = ServeClient.for_server(server)
        try:
            for round_no in range(6):
                index = (offset + round_no) % len(documents)
                served = client.map(xml=documents[index])["result"]
                if not (served["ok"]
                        and served["output"] == expected_maps[index]):
                    errors.append(f"map[{index}] diverged")
                qindex = (offset + round_no) % len(queries)
                item = client.translate(query=queries[qindex])["result"]
                if not (item["ok"]
                        and item["anfa"] == expected_anfas[qindex]):
                    errors.append(f"translate[{qindex}] diverged")
        except Exception as exc:  # surface in the main thread
            errors.append(f"worker {offset}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(offset,))
               for offset in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors[:5]


# -- batch semantics ----------------------------------------------------------

def test_batch_items_fail_individually(school, client):
    good = _documents(school, 1)[0]
    response = client.map(documents=[
        {"name": "good.xml", "xml": good},
        {"name": "bad.xml", "xml": "<1abc></1abc>"},
        {"name": "good2.xml", "xml": good},
    ])
    assert response["failures"] == 1
    flags = [item["ok"] for item in response["results"]]
    assert flags == [True, False, True]
    # Failed items carry 'error', never 'output', so an error string
    # can never be mistaken for document content.
    assert "XMLParseError" in response["results"][1]["error"]
    assert "output" not in response["results"][1]


def test_translate_batch_isolates_bad_queries(client):
    response = client.translate(queries=["class/cno/text()", "class["])
    assert response["failures"] == 1
    assert response["results"][0]["ok"]
    assert not response["results"][1]["ok"]
    assert "error" in response["results"][1]


def test_find_makes_embedding_addressable(school, client):
    source_fp = school.classes.fingerprint()
    target_fp = school.school.fingerprint()
    found = client.find(source=source_fp, target=target_fp, seed=1)
    assert found["found"]
    xml = _documents(school, 1)[0]
    served = client.map(xml=xml, embedding=found["embedding"])
    assert served["result"]["ok"]


# -- protocol errors ----------------------------------------------------------

def test_malformed_json_body_gets_structured_400(server):
    import http.client

    connection = http.client.HTTPConnection(server.host, server.port)
    try:
        connection.request("POST", "/v1/map", body=b"{not json",
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        payload = json.loads(response.read())
    finally:
        connection.close()
    assert response.status == 400
    assert payload["error"]["code"] == "bad-json"
    assert "message" in payload["error"]


def test_protocol_error_shapes(client):
    with pytest.raises(ServeError) as excinfo:
        client.request("POST", "/v1/map", {})
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.request("POST", "/v1/map", {"xml": "<a/>",
                                           "embedding": "feedface"})
    assert excinfo.value.status == 404
    assert excinfo.value.code == "unknown-embedding"
    with pytest.raises(ServeError) as excinfo:
        client.request("GET", "/v1/map")
    assert excinfo.value.status == 405
    with pytest.raises(ServeError) as excinfo:
        client.request("GET", "/v1/nope")
    assert excinfo.value.status == 404


def test_dispatch_without_http(school):
    """The handler layer is pure — tests can drive it with no socket."""
    state = ServiceState.from_embedding(school.sigma1)
    status, payload = dispatch(state, "GET", "/healthz")
    assert status == 200 and payload["ok"]
    status, payload = dispatch(state, "POST", "/v1/map", b"[1, 2]")
    assert status == 400
    assert payload["error"]["code"] == "bad-request"
    with pytest.raises(ProtocolError):
        state.resolve_embedding("nope")


# -- metrics ------------------------------------------------------------------

def test_metrics_counters_advance(school, client):
    before = client.metrics()
    base = before["requests"].get("/v1/map", {}).get("requests", 0)
    xml = _documents(school, 1)[0]
    for _ in range(3):
        client.map(xml=xml)
    after = client.metrics()
    row = after["requests"]["/v1/map"]
    assert row["requests"] == base + 3
    assert row["errors"] == before["requests"].get("/v1/map", {}).get(
        "errors", 0)
    assert row["latency_ms"]["p50"] >= 0.0
    assert row["latency_ms"]["max"] >= row["latency_ms"]["p50"]
    # Warm-started from the store: serving never compiles.
    assert after["engine"]["embeddings"]["misses"] == 0
    assert after["engine"]["schemas"]["misses"] == 0


def test_metrics_count_errors(client):
    before = client.metrics()["requests"].get("/v1/map",
                                              {}).get("errors", 0)
    with pytest.raises(ServeError):
        client.request("POST", "/v1/map", {})
    after = client.metrics()["requests"]["/v1/map"]["errors"]
    assert after == before + 1


# -- lifecycle ----------------------------------------------------------------

def test_graceful_shutdown_releases_port(store_path):
    server = ReproServer(store=store_path, port=0).start()
    port = server.port
    assert ServeClient.for_server(server).healthz()["ok"]
    server.stop()
    assert not server.running
    # The port is immediately bindable by a fresh server.
    rebound = ReproServer(store=store_path, port=port).start()
    try:
        assert rebound.port == port
        assert ServeClient.for_server(rebound).healthz()["ok"]
    finally:
        rebound.stop()


def test_server_requires_exactly_one_source(school, store_path):
    with pytest.raises(ValueError):
        ReproServer()
    with pytest.raises(ValueError):
        ReproServer(store=store_path, embedding=school.sigma1)


# -- keep-alive ---------------------------------------------------------------

def test_client_reuses_one_connection(school, server):
    """The daemon speaks HTTP/1.1 keep-alive and the client holds one
    persistent connection per thread: many requests, zero reconnects."""
    client = ServeClient.for_server(server)
    xml = _documents(school, 1)[0]
    for _ in range(10):
        assert client.map(xml=xml)["result"]["ok"]
        assert client.healthz()["ok"]
    assert client.reconnects == 0
    client.close()


def test_client_reconnects_after_server_restart(school, store_path):
    """A stale keep-alive socket (server bounced between requests) is
    replayed once on a fresh connection instead of surfacing an error."""
    server = ReproServer(store=store_path, port=0).start()
    port = server.port
    client = ServeClient(server.host, port)
    assert client.healthz()["ok"]
    server.stop()
    rebound = ReproServer(store=store_path, port=port).start()
    try:
        assert client.healthz()["ok"]  # same client object, new socket
        assert client.reconnects >= 1
    finally:
        client.close()
        rebound.stop()


# -- graceful drain -----------------------------------------------------------

def test_stop_drains_in_flight_requests(school, store_path):
    """stop() waits for dispatched requests to finish writing their
    responses: a request racing shutdown completes instead of dying."""
    server = ReproServer(store=store_path, port=0).start()
    xml = _documents(school, 1)[0]
    expected = ServeClient.for_server(server).map(
        xml=xml)["result"]["output"]
    results: list = []
    started = threading.Barrier(2)

    def slow_caller() -> None:
        client = ServeClient.for_server(server)
        started.wait()
        try:
            results.append(client.map(xml=xml)["result"]["output"])
        except Exception as exc:
            results.append(exc)
        finally:
            client.close()

    thread = threading.Thread(target=slow_caller)
    thread.start()
    started.wait()
    server.stop()  # races the in-flight map; drain must cover it
    thread.join(timeout=15)
    assert not thread.is_alive()
    assert len(results) == 1
    # Either the request was accepted (then it must have completed
    # byte-identically) or the socket closed before accept (a clean
    # connection error, never a half-written response).
    if isinstance(results[0], str):
        assert results[0] == expected
    else:
        assert isinstance(results[0], (ConnectionError, OSError))
    assert server.in_flight == 0


def test_idle_keepalive_connection_does_not_block_stop(store_path):
    """Draining counts in-flight *requests*, not open connections: an
    idle keep-alive client must not hold shutdown hostage."""
    server = ReproServer(store=store_path, port=0).start()
    client = ServeClient.for_server(server)
    assert client.healthz()["ok"]  # connection now idles, kept alive
    started = time.monotonic()
    server.stop(drain_seconds=30.0)
    assert time.monotonic() - started < 10.0
    assert not server.running
    client.close()
