"""Unit tests: consistency / useless-type removal (Section 2.1)."""

import pytest

from repro.dtd.consistency import (
    consistent_types,
    is_consistent,
    productive_types,
    remove_useless_types,
)
from repro.dtd.model import Empty, SchemaError, Star
from repro.schema import load_schema


def test_fully_consistent_schema():
    dtd = load_schema("r -> a*\na -> b + eps\nb -> str")
    assert is_consistent(dtd)
    assert consistent_types(dtd) == {"r", "a", "b"}


def test_unproductive_type_detected():
    # 'loop' can never derive a finite tree: loop -> loop.
    dtd = load_schema("r -> a + b\na -> str\nb -> loop\nloop -> loop")
    assert productive_types(dtd) == {"r", "a"}
    assert consistent_types(dtd) == {"r", "a"}
    assert not is_consistent(dtd)


def test_unreachable_type_detected():
    dtd = load_schema("r -> a\na -> str\nisland -> str")
    assert consistent_types(dtd) == {"r", "a"}


def test_reachability_must_pass_productive_parents():
    # 'c' is only reachable through unproductive 'b'.
    dtd = load_schema("r -> a + b\na -> str\nb -> b2\nb2 -> b, c\nc -> str")
    assert "c" not in consistent_types(dtd)


def test_remove_useless_drops_disjunction_alternative():
    dtd = load_schema("r -> a + b\na -> str\nb -> loop\nloop -> loop")
    cleaned = remove_useless_types(dtd)
    assert set(cleaned.types) == {"r", "a"}
    assert cleaned.production("r").children == ("a",)


def test_remove_useless_star_child_becomes_empty():
    dtd = load_schema("r -> x\nx -> loop*\nloop -> loop")
    cleaned = remove_useless_types(dtd)
    assert isinstance(cleaned.production("x"), Empty)


def test_remove_useless_noop_on_consistent():
    dtd = load_schema("r -> a\na -> str")
    assert remove_useless_types(dtd) is dtd


def test_remove_useless_rejects_empty_language():
    dtd = load_schema("r -> r2\nr2 -> r")
    with pytest.raises(SchemaError):
        remove_useless_types(dtd)


def test_star_is_always_productive():
    dtd = load_schema("r -> loop2*\nloop2 -> loop2")
    # r itself is productive (zero children) even though loop2 is not.
    assert "r" in productive_types(dtd)
    assert "loop2" not in productive_types(dtd)


def test_optional_disjunction_is_productive():
    dtd = load_schema("r -> a\na -> loop + eps\nloop -> loop")
    assert "a" in productive_types(dtd)
