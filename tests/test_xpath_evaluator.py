"""Unit tests: XR evaluation semantics (Section 2.2, Marx 2004)."""

import pytest

from repro.xpath.evaluator import ResultSet, evaluate, evaluate_set, holds_at
from repro.xpath.parser import parse_qualifier, parse_xr
from repro.xtree.parser import parse_xml

DOC = parse_xml("""
<r>
  <a><b>one</b><c><b>deep</b></c></a>
  <a><b>two</b></a>
  <a><b>three</b><d>delta</d></a>
</r>
""".strip())


def _tags(items):
    return [item if isinstance(item, str) else item.tag for item in items]


def test_child_step():
    assert _tags(evaluate(parse_xr("a"), DOC)) == ["a", "a", "a"]


def test_child_chain_and_text():
    assert evaluate(parse_xr("a/b/text()"), DOC) == ["one", "two", "three"]


def test_empty_path_is_self():
    items = evaluate(parse_xr("."), DOC)
    assert len(items) == 1 and items[0] is DOC


def test_union_dedup_document_order():
    items = evaluate(parse_xr("a/b | a"), DOC)
    # 3 a's and 3 direct b's, in document order: a,b,a,b,a,b
    assert _tags(items) == ["a", "b", "a", "b", "a", "b"]


def test_descendant_or_self():
    items = evaluate(parse_xr("//b"), DOC)
    assert len(items) == 4  # includes the nested one


def test_descendant_text():
    assert set(evaluate(parse_xr("//b/text()"), DOC)) == \
        {"one", "two", "three", "deep"}


def test_position_qualifier():
    assert evaluate(parse_xr("a[position()=2]/b/text()"), DOC) == ["two"]


def test_position_out_of_range():
    assert evaluate(parse_xr("a[position()=9]"), DOC) == []


def test_path_existence_qualifier():
    assert evaluate(parse_xr("a[d]/b/text()"), DOC) == ["three"]


def test_text_equality_qualifier():
    assert evaluate(parse_xr("a[b/text()='two']/b/text()"), DOC) == ["two"]


def test_negation_and_conjunction():
    items = evaluate(parse_xr("a[not(d) and not(c)]/b/text()"), DOC)
    assert items == ["two"]


def test_disjunction_qualifier():
    items = evaluate(parse_xr("a[d or c]/b/text()"), DOC)
    assert items == ["one", "three"]


def test_star_reflexive():
    items = evaluate(parse_xr("(a)*"), DOC)
    assert _tags(items) == ["r", "a", "a", "a"]


def test_star_transitive():
    doc = parse_xml("<r><n><n><n/></n></n></r>")
    items = evaluate(parse_xr("(n)*"), doc)
    assert len(items) == 4  # r + 3 nested n's


def test_star_with_qualifier_filter():
    items = evaluate(parse_xr("(a | a/c)*[b]"), DOC)
    # nodes reachable with a b child: the three a's and the c.
    assert sorted(_tags(items)) == ["a", "a", "a", "c"]


def test_strings_have_no_children():
    assert evaluate(parse_xr("a/b/text()/b"), DOC) == []


def test_result_set_ids_and_strings():
    result = evaluate_set(parse_xr("a/b/text() | a"), DOC)
    assert len(result.ids) == 3
    assert result.strings == frozenset({"one", "two", "three"})


def test_result_set_map_ids():
    result = ResultSet(frozenset({1, 2}), frozenset({"x"}))
    mapped = result.map_ids({1: 10, 2: 20})
    assert mapped.ids == frozenset({10, 20})
    with pytest.raises(KeyError):
        result.map_ids({1: 10})


def test_holds_at():
    a_nodes = DOC.children_tagged("a")
    assert holds_at(parse_qualifier("d"), a_nodes[2])
    assert not holds_at(parse_qualifier("d"), a_nodes[0])


def test_qualifier_true():
    assert evaluate(parse_xr("a[true()]"), DOC) == \
        evaluate(parse_xr("a"), DOC)
