"""Unit tests: XR paths and their schema classification (Section 4.1)."""

import pytest

from repro.xpath.paths import (
    PathClassError,
    PathStep,
    XRPath,
    classify_path,
    first_divergence,
)
from repro.workloads.library import school_example

SCHOOL = school_example().school


def test_parse_and_render():
    path = XRPath.parse("basic/class/semester[position()=1]/title")
    assert path.steps == (PathStep("basic"), PathStep("class"),
                          PathStep("semester", 1), PathStep("title"))
    assert str(path) == "basic/class/semester[position()=1]/title"


def test_parse_text_path():
    path = XRPath.parse("text()")
    assert path.steps == () and path.text
    assert str(path) == "text()"


def test_text_must_be_last():
    with pytest.raises(PathClassError):
        XRPath.parse("a/text()/b")


def test_bad_step_rejected():
    with pytest.raises(PathClassError):
        XRPath.parse("a[2]/b")


def test_prefix_relation():
    p1 = XRPath.parse("a/b")
    p2 = XRPath.parse("a/b/c")
    assert p1.is_prefix_of(p2)
    assert not p2.is_prefix_of(p1)
    assert p1.is_prefix_of(p1)  # equality counts (Section 4.1)


def test_prefix_respects_positions():
    pinned1 = XRPath.parse("a[position()=1]/b")
    pinned2 = XRPath.parse("a[position()=2]/b")
    assert not pinned1.is_prefix_of(pinned2)


def test_text_path_prefix_only_of_itself():
    text_path = XRPath.parse("a/text()")
    longer = XRPath.parse("a/b")
    assert not text_path.is_prefix_of(longer)
    assert text_path.is_prefix_of(XRPath.parse("a/text()"))


def test_concat_paths():
    joined = XRPath.parse("a/b").concat(XRPath.parse("c/text()"))
    assert str(joined) == "a/b/c/text()"
    with pytest.raises(PathClassError):
        XRPath.parse("a/text()").concat(XRPath.parse("b"))


def test_classify_and_path():
    info = classify_path(XRPath.parse("basic/cno"), SCHOOL, "course")
    assert info.is_and_path()
    assert not info.is_or_path() and not info.is_star_path()
    assert info.end_type == "cno"


def test_classify_or_path():
    info = classify_path(XRPath.parse("mandatory/regular"), SCHOOL,
                         "category")
    assert info.is_or_path()
    # Both steps are OR edges: category -> mandatory -> regular|lab.
    assert info.or_indices == (0, 1)


def test_classify_star_path_with_suffix():
    info = classify_path(XRPath.parse("courses/current/course"), SCHOOL,
                         "school")
    assert info.is_star_path()
    assert info.carrier_index == 2


def test_classify_pinned_star_is_and():
    info = classify_path(
        XRPath.parse("basic/class/semester[position()=1]/title"),
        SCHOOL, "course")
    assert info.is_and_path()
    assert not info.is_star_path()


def test_unpinned_star_in_and_context_detected():
    info = classify_path(XRPath.parse("basic/class/semester"), SCHOOL,
                         "course")
    assert not info.is_and_path()      # R3: star must be pinned
    assert info.is_star_path()


def test_classify_rejects_non_schema_path():
    with pytest.raises(PathClassError):
        classify_path(XRPath.parse("nope"), SCHOOL, "course")


def test_classify_rejects_descend_through_str():
    with pytest.raises(PathClassError):
        classify_path(XRPath.parse("cno/zzz"), SCHOOL, "basic")


def test_classify_text_requires_str_endpoint():
    with pytest.raises(PathClassError):
        classify_path(XRPath.parse("basic/text()"), SCHOOL, "course")
    info = classify_path(XRPath.parse("basic/cno/text()"), SCHOOL, "course")
    assert info.end_type == "cno"


def test_classify_normalises_redundant_position():
    info = classify_path(XRPath.parse("basic[position()=1]/cno"), SCHOOL,
                         "course")
    assert info.path.steps[0].pos is None


def test_classify_requires_position_on_repeated_children():
    from repro.schema import load_schema

    dtd = load_schema("a -> b, b\nb -> str")
    with pytest.raises(PathClassError):
        classify_path(XRPath.parse("b"), dtd, "a")
    info = classify_path(XRPath.parse("b[position()=2]"), dtd, "a")
    assert info.path.steps[0].pos == 2


def test_classify_out_of_range_position():
    from repro.schema import load_schema

    dtd = load_schema("a -> b, b\nb -> str")
    with pytest.raises(PathClassError):
        classify_path(XRPath.parse("b[position()=3]"), dtd, "a")


def test_first_divergence():
    p1 = XRPath.parse("a/b/c")
    p2 = XRPath.parse("a/x/c")
    assert first_divergence(p1, p2) == 1
    assert first_divergence(p1, XRPath.parse("a/b")) is None


def test_with_pinned_carrier():
    path = XRPath.parse("courses/current/course")
    info = classify_path(path, SCHOOL, "school")
    pinned = path.with_pinned_carrier(3, info.carrier_index)
    assert str(pinned) == "courses/current/course[position()=3]"
    with pytest.raises(PathClassError):
        pinned.with_pinned_carrier(1, info.carrier_index)


def test_to_expr_roundtrip_semantics():
    from repro.xpath.parser import parse_xr

    path = XRPath.parse("a/b[position()=2]/text()")
    assert str(path.to_expr()) == str(parse_xr("a/b[position()=2]/text()"))


def test_len_counts_text():
    assert len(XRPath.parse("a/b")) == 2
    assert len(XRPath.parse("a/text()")) == 2
    assert len(XRPath.parse("text()")) == 1
