"""Inverse mapping tests: σd⁻¹(σd(T)) = T (Theorems 3.3 / 4.3)."""

import pytest

from repro.core.errors import InverseError
from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.core.inverse_queries import invert_via_queries
from repro.dtd.generate import random_instance
from repro.workloads.noise import expand_schema
from repro.workloads.library import SCHEMA_LIBRARY
from repro.xtree.nodes import elem, tree_equal
from repro.xtree.parser import parse_xml


def test_roundtrip_school_example(school):
    instmap = InstMap(school.sigma1)
    for seed in range(10):
        instance = random_instance(school.classes, seed=seed, max_depth=9)
        mapped = instmap.apply(instance)
        assert tree_equal(invert(school.sigma1, mapped.tree), instance)


def test_roundtrip_students(school):
    instmap = InstMap(school.sigma2)
    for seed in range(10):
        instance = random_instance(school.students, seed=seed)
        mapped = instmap.apply(instance)
        assert tree_equal(invert(school.sigma2, mapped.tree), instance)


@pytest.mark.parametrize("name", sorted(SCHEMA_LIBRARY))
def test_roundtrip_library_expansions(name):
    source = SCHEMA_LIBRARY[name]()
    expansion = expand_schema(source, seed=5)
    instmap = InstMap(expansion.embedding)
    for seed in range(3):
        instance = random_instance(source, seed=seed, max_depth=8)
        mapped = instmap.apply(instance)
        assert tree_equal(invert(expansion.embedding, mapped.tree), instance)


def test_inverse_rejects_wrong_root(school):
    with pytest.raises(InverseError):
        invert(school.sigma1, elem("not-school"))


def test_inverse_strict_detects_missing_paths(school):
    instance = parse_xml(
        "<db><class><cno>1</cno><title>t</title>"
        "<type><project>p</project></type></class></db>")
    mapped = InstMap(school.sigma1).apply(instance)
    # Corrupt the image: drop the cno holder under basic.
    course = mapped.tree.children_tagged("courses")[0] \
        .children_tagged("current")[0].children_tagged("course")[0]
    basic = course.children_tagged("basic")[0]
    basic.children = [c for c in basic.children if c.tag != "cno"]
    with pytest.raises(InverseError):
        invert(school.sigma1, mapped.tree)


def test_inverse_detects_broken_disjunction(school):
    instance = parse_xml(
        "<db><class><cno>1</cno><title>t</title>"
        "<type><project>p</project></type></class></db>")
    mapped = InstMap(school.sigma1).apply(instance)
    course = mapped.tree.children_tagged("courses")[0] \
        .children_tagged("current")[0].children_tagged("course")[0]
    category = course.children_tagged("category")[0]
    category.children = []  # neither mandatory nor advanced
    with pytest.raises(InverseError):
        invert(school.sigma1, mapped.tree)


def test_query_driven_inverse_agrees(school):
    """The Theorem 3.3 proof algorithm reconstructs the same tree."""
    instmap = InstMap(school.sigma1)
    for seed in range(4):
        instance = random_instance(school.classes, seed=seed, max_depth=7)
        mapped = instmap.apply(instance)
        structural = invert(school.sigma1, mapped.tree)
        query_driven = invert_via_queries(school.sigma1, mapped.tree)
        assert tree_equal(structural, query_driven)
        assert tree_equal(query_driven, instance)


def test_query_driven_inverse_students(school):
    instmap = InstMap(school.sigma2)
    instance = random_instance(school.students, seed=3)
    mapped = instmap.apply(instance)
    assert tree_equal(invert_via_queries(school.sigma2, mapped.tree),
                      instance)


def test_query_driven_inverse_rejects_wrong_root(school):
    with pytest.raises(InverseError):
        invert_via_queries(school.sigma1, elem("zzz"))


def test_inverse_preserves_pcdata_verbatim(school):
    instance = parse_xml(
        "<db><class><cno>  spaces &amp; symbols  </cno><title></title>"
        "<type><project>p</project></type></class></db>",
        keep_whitespace=True)
    # title with empty text is not valid for P(title)=str (needs one
    # text node) — patch in an explicit empty-ish value instead.
    title = instance.children_tagged("class")[0].children_tagged("title")[0]
    from repro.xtree.nodes import TextNode

    title.children = []
    title.append(TextNode("x y"))
    mapped = InstMap(school.sigma1).apply(instance)
    recovered = invert(school.sigma1, mapped.tree)
    cno = recovered.children_tagged("class")[0].children_tagged("cno")[0]
    assert cno.child_text() == "  spaces & symbols  "
