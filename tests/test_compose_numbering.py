"""Golden state numbering: relocation-free composition is byte-stable.

The append-only chain composition of :mod:`repro.anfa.compose` must
reproduce the recursive (pairwise-``embed``) construction's state
numbers **exactly** — canonical renderings feed serve responses, trim
certificates and store fingerprints, so a renumbering is a wire-format
break even when the automata are isomorphic.

Two enforcement angles:

* a *pairwise oracle*: the old recursive algorithm is exactly the
  2-operand case of the flattened composition, so recursing pairwise
  over the query spine rebuilds the historical automaton — its
  canonical rendering must equal the flattened build's, for both the
  construction plane and the translation plane, over randomized and
  hand-picked deep queries;
* *frozen snapshots*: committed renderings of representative queries
  (school σ1 translations and raw constructions), byte-compared.
"""

from __future__ import annotations

import pytest

from repro.anfa.compose import (
    concat_operands,
    translated_concat,
    translated_union,
    union_operands,
)
from repro.anfa.construct import _build, anfa_of_query
from repro.core.translate import Translator
from repro.workloads.library import SCHEMA_LIBRARY
from repro.workloads.noise import expand_schema
from repro.workloads.queries import random_queries
from repro.xpath.ast import PathExpr, Seq, Union
from repro.xpath.parser import parse_xr


def _pairwise_build(query: PathExpr):
    """The historical recursive construction: binary union/concat via
    one ``embed`` per level (the 2-operand case of the flattened
    composition *is* the old algorithm, state for state)."""
    if isinstance(query, Union):
        return union_operands([_pairwise_build(query.left),
                               _pairwise_build(query.right)])
    if isinstance(query, Seq):
        return concat_operands([_pairwise_build(query.left),
                                _pairwise_build(query.right)])
    return _build(query)


def _pairwise_translate(translator: Translator, query: PathExpr,
                        context: str):
    """The historical recursive translation spine (leaves delegate to
    the shared, memoised ``trl`` — identical objects either way)."""
    if isinstance(query, Union):
        return translated_union([
            _pairwise_translate(translator, query.left, context),
            _pairwise_translate(translator, query.right, context)])
    if isinstance(query, Seq):
        return translated_concat(
            _pairwise_translate(translator, query.left, context),
            [query.right], translator.trl)
    return translator.trl(query, context)


DEEP_QUERIES = [
    "/".join(["node"] * 48),
    " | ".join(["node"] * 9),
    "(" + "/".join(["node"] * 7) + ")*",
    "node/" + "(node | node/node)/" * 5 + "node",
    "node/text() | " + "/".join(["node"] * 12) + "/text()",
]


@pytest.mark.parametrize("name", sorted(SCHEMA_LIBRARY))
def test_construction_matches_pairwise_oracle(name):
    source = SCHEMA_LIBRARY[name]()
    for query in random_queries(source, 10, seed=31, max_steps=8):
        flattened = anfa_of_query(query)
        recursive = _pairwise_build(query).trim()
        assert flattened.canonical_describe() \
            == recursive.canonical_describe(), str(query)


@pytest.mark.parametrize("name", sorted(SCHEMA_LIBRARY))
def test_translation_matches_pairwise_oracle(name):
    source = SCHEMA_LIBRARY[name]()
    expansion = expand_schema(source, seed=5)
    translator = Translator(expansion.embedding)
    context = source.root
    for query in random_queries(source, 10, seed=32, max_steps=8):
        flattened = translator.translate(query)
        oracle = Translator(expansion.embedding)
        recursive = _pairwise_translate(oracle, query, context).trim()
        assert flattened.canonical_describe() \
            == recursive.canonical_describe(), str(query)


def test_deep_chain_numbering_matches_pairwise_oracle():
    """The exact shapes the flattening exists for: deep left spines."""
    from repro.core.embedding import build_embedding
    from repro.schema import load_schema

    source = load_schema("node -> node*", format="compact",
                         name="chain-src")
    target = load_schema("wrap -> inner\ninner -> wrap*",
                         format="compact", root="wrap",
                         name="chain-tgt")
    sigma = build_embedding(source, target, {"node": "wrap"},
                            {("node", "node"): "inner/wrap"})
    for text in DEEP_QUERIES:
        query = parse_xr(text)
        assert anfa_of_query(query).canonical_describe() \
            == _pairwise_build(query).trim().canonical_describe()
        flattened = Translator(sigma).translate(query)
        oracle = Translator(sigma)
        recursive = _pairwise_translate(oracle, query, "node").trim()
        assert flattened.canonical_describe() \
            == recursive.canonical_describe()


# Frozen renderings: any renumbering (even isomorphic) breaks these.
CONSTRUCTION_SNAPSHOTS = {
    "A/B/C/D": (
        "ANFA M0: start=0, finals={10: None}\n"
        "  0 --eps--> 1\n"
        "  1 --eps--> 2\n"
        "  2 --eps--> 3\n"
        "  3 --A--> 4\n"
        "  4 --eps--> 5\n"
        "  5 --B--> 6\n"
        "  6 --eps--> 7\n"
        "  7 --C--> 8\n"
        "  8 --eps--> 9\n"
        "  9 --D--> 10"),
    "A|B|C|D": (
        "ANFA M0: start=0, finals={4: None, 6: None, 8: None, 10: None}\n"
        "  0 --eps--> 1\n"
        "  0 --eps--> 9\n"
        "  1 --eps--> 2\n"
        "  1 --eps--> 7\n"
        "  2 --eps--> 3\n"
        "  2 --eps--> 5\n"
        "  3 --A--> 4\n"
        "  5 --B--> 6\n"
        "  7 --C--> 8\n"
        "  9 --D--> 10"),
}

TRANSLATION_SNAPSHOTS = {
    "class/cno/text()": (
        "ANFA M0: start=0, finals={10: '#str'}\n"
        "  0 --eps--> 1\n"
        "  1 --eps--> 2\n"
        "  2 --courses--> 3\n"
        "  3 --current--> 4\n"
        "  4 --course--> 5\n"
        "  5 --eps--> 6\n"
        "  6 --basic--> 7\n"
        "  7 --cno--> 8\n"
        "  8 --eps--> 9\n"
        "  9 --str--> 10"),
    "class/type/regular/prereq/class/title/text()": (
        "ANFA M0: start=0, finals={26: '#str'}\n"
        "  0 --eps--> 1\n"
        "  1 --eps--> 2\n"
        "  2 --eps--> 3\n"
        "  3 --eps--> 4\n"
        "  4 --eps--> 5\n"
        "  5 --eps--> 6\n"
        "  6 --courses--> 7\n"
        "  7 --current--> 8\n"
        "  8 --course--> 9\n"
        "  9 --eps--> 10\n"
        "  10 --category--> 11\n"
        "  11 --eps--> 12\n"
        "  12 --mandatory--> 13\n"
        "  13 --regular--> 14\n"
        "  14 --eps--> 15\n"
        "  15 --required--> 16\n"
        "  16 --prereq--> 17\n"
        "  17 --eps--> 18\n"
        "  18 --course--> 19\n"
        "  19 --eps--> 20\n"
        "  20 --basic--> 21\n"
        "  21 --class--> 22\n"
        "  22 --semester[1]--> 23\n"
        "  23 --title--> 24\n"
        "  24 --eps--> 25\n"
        "  25 --str--> 26"),
}


def test_construction_rendering_snapshots():
    for text, expected in CONSTRUCTION_SNAPSHOTS.items():
        assert anfa_of_query(parse_xr(text)).canonical_describe() \
            == expected, text


def test_translation_rendering_snapshots(school):
    translator = Translator(school.sigma1)
    for text, expected in TRANSLATION_SNAPSHOTS.items():
        assert translator.translate(parse_xr(text)).canonical_describe() \
            == expected, text
