"""Fast-path equivalence: compiled programs vs. the reference walkers.

The compiled document plane (:mod:`repro.engine.plan`), the streaming
executor (:mod:`repro.engine.stream`) and the generated codecs
(:mod:`repro.engine.codegen`) must all be **byte-identical** to the
reference implementations — same serialized trees, same ``idM``
correspondence, same inverse, same query answers, same errors — on
randomized corpora over every library schema pair and a set of
synthetic random schemas.  This suite is the invariant's enforcement
point (see ROADMAP "fast-path invariant").
"""

from __future__ import annotations

import pytest

from repro.anfa.evaluate import evaluate_anfa
from repro.core.instmap import InstMap, MappingResult
from repro.core.inverse import run_invert
from repro.core.translate import Translator
from repro.dtd.generate import random_instance
from repro.engine.codegen import generate_codec
from repro.engine.plan import InverseProgram
from repro.engine.stream import iter_mapped, stream_map_to_path
from repro.workloads.library import SCHEMA_LIBRARY
from repro.workloads.noise import expand_schema
from repro.workloads.queries import random_queries
from repro.workloads.synthetic import random_dtd
from repro.xtree.nodes import ElementNode, tree_equal
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string


def _idm_signature(result: MappingResult) -> list[tuple[int, int]]:
    """``idM`` rendered structurally: (pre-order index of the target
    node, source node id).  Comparable across two runs on the same
    source document even though target ids are globally fresh."""
    order = {node.node_id: index
             for index, node in enumerate(result.tree.iter())}
    return sorted((order[target], source)
                  for target, source in result.idM.items())


def _answers(anfa, result: MappingResult) -> list[object]:
    """Query answers mapped back through ``idM``: source ids for
    elements, values for strings — comparable across runs."""
    out = []
    for item in evaluate_anfa(anfa, result.tree):
        if isinstance(item, ElementNode):
            out.append(("id", result.idM.get(item.node_id)))
        else:
            out.append(("str", item))
    return out


def _assert_equivalent(embedding, instance, queries) -> None:
    instmap = InstMap(embedding)
    assert instmap._program is not None, "fast path failed to compile"
    fast = instmap.apply(instance)
    reference = instmap.apply_reference(instance)

    # Identical trees (bytes) and identical idM correspondence.
    assert to_string(fast.tree) == to_string(reference.tree)
    assert _idm_signature(fast) == _idm_signature(reference)

    # Identical inverses, and both recover the source.
    inverse = InverseProgram(embedding, instmap._infos)
    recovered_fast = inverse.apply(fast.tree)
    recovered_reference = run_invert(embedding, reference.tree)
    assert to_string(recovered_fast) == to_string(recovered_reference)
    assert tree_equal(recovered_fast, instance)

    # Identical query answers through either mapped document.
    translator = Translator(embedding)
    for query in queries:
        anfa = translator.translate(query)
        assert _answers(anfa, fast) == _answers(anfa, reference), str(query)

    # Streaming mode: event-driven chunks concatenate to exactly the
    # bytes of the buffered pipeline over the same serialized text.
    text = to_string(instance)
    buffered = to_string(instmap.apply(parse_xml(text)).tree)
    assert "".join(iter_mapped(instmap, text=text)) == buffered

    # Codec mode: the generated parse→map→serialize module produces the
    # same bytes from the tree and from text.  Every corpus shape here
    # is expected to specialise — a CodecError is a generator regression.
    codec = generate_codec(instmap)
    assert codec.map_tree(instance) == to_string(fast.tree)
    assert codec.map_text(text) == buffered


@pytest.mark.parametrize("name", sorted(SCHEMA_LIBRARY))
def test_library_pair_equivalence(name):
    source = SCHEMA_LIBRARY[name]()
    expansion = expand_schema(source, seed=5)
    queries = random_queries(source, 6, seed=21, max_steps=6)
    for seed in range(4):
        instance = random_instance(source, seed=seed, max_depth=8)
        _assert_equivalent(expansion.embedding, instance, queries)


def test_school_pair_equivalence(school):
    bundle = school
    for sigma, dtd in ((bundle.sigma1, bundle.classes),
                       (bundle.sigma2, bundle.students)):
        queries = random_queries(dtd, 8, seed=13, max_steps=7)
        for seed in range(6):
            instance = random_instance(dtd, seed=seed, max_depth=9)
            _assert_equivalent(sigma, instance, queries)


@pytest.mark.parametrize("n_types,seed", [(8, 1), (14, 2), (20, 3),
                                          (26, 4), (12, 7)])
def test_synthetic_pair_equivalence(n_types, seed):
    """Random schemas from the synthetic generator, expanded into
    embedding pairs — shapes the library does not cover (deep stars,
    optional disjunctions, repeated concat children)."""
    source = random_dtd(n_types, seed=seed, star_p=0.3, or_p=0.3,
                        recursive_p=0.15)
    expansion = expand_schema(source, seed=seed + 50)
    queries = random_queries(source, 5, seed=seed, max_steps=6)
    for instance_seed in range(3):
        instance = random_instance(source, seed=instance_seed, max_depth=7)
        _assert_equivalent(expansion.embedding, instance, queries)


def test_stream_and_codec_parse_errors_match_reference(school, tmp_path):
    """A document that breaks mid-parse raises the same ValueError-
    rooted error from the streamer and the codec as from the buffered
    ``parse_xml`` — and the atomic streaming writer leaves no partial
    output behind."""
    instmap = InstMap(school.sigma1)
    codec = generate_codec(instmap)
    prefix = ("<db><class><cno>1</cno><title>t</title>"
              "<type><project>p</project></type></class>")
    bad_documents = [
        prefix + "</dbx>",        # close tag mismatches the open root
        prefix,                   # truncated: the root never closes
        prefix + "<bro ken</db>",  # malformed markup mid-document
    ]
    for xml in bad_documents:
        with pytest.raises(ValueError) as reference:
            parse_xml(xml)
        with pytest.raises(ValueError) as streamed:
            "".join(iter_mapped(instmap, text=xml))
        assert str(streamed.value) == str(reference.value)
        with pytest.raises(ValueError) as generated:
            codec.map_text(xml)
        assert str(generated.value) == str(reference.value)

        out_path = tmp_path / "mapped.xml"
        with pytest.raises(ValueError):
            stream_map_to_path(instmap, out_path, text=xml)
        assert not out_path.exists()
        assert not list(tmp_path.glob(".repro-stream-*"))


def test_stream_and_codec_mapping_errors_match_interpreter(school):
    """Well-formed but non-conforming documents (single defect) raise
    the interpreter's exact error text from every execution mode."""
    instmap = InstMap(school.sigma1)
    codec = generate_codec(instmap)
    bad_documents = [
        "<dbx/>",                                   # wrong root element
        "<db><klass><cno>1</cno></klass></db>",     # unknown source type
    ]
    for xml in bad_documents:
        document = parse_xml(xml)
        with pytest.raises(ValueError) as reference:
            instmap.apply(document)
        with pytest.raises(ValueError) as streamed:
            "".join(iter_mapped(instmap, text=xml))
        assert str(streamed.value) == str(reference.value)
        with pytest.raises(ValueError) as generated:
            codec.map_text(xml)
        assert str(generated.value) == str(reference.value)


def test_codec_source_is_deterministic(school):
    """Two independent generations of the same embedding's codec are
    byte-identical (the store caches source by fingerprint, so a cache
    hit must equal a fresh generation)."""
    first = generate_codec(InstMap(school.sigma1))
    second = generate_codec(InstMap(school.sigma1))
    assert first.source == second.source


def test_partial_documents_fall_back_identically(school):
    """Documents with missing/extra children are served by the
    sparse-concat programs — output must still match the reference run,
    and no declared-edge shape may reach the reference builder."""
    bundle = school
    instmap = InstMap(bundle.sigma1)
    program = instmap._program

    partials = [
        # A class missing its title: concat shape mismatch -> sparse.
        "<db><class><cno>1</cno><type><project>p</project></type>"
        "</class></db>",
        # Children out of production order.
        "<db><class><title>t</title><cno>1</cno>"
        "<type><project>p</project></type></class></db>",
    ]
    for xml in partials:
        document = parse_xml(xml)
        before = program.reference_fallbacks
        fast = instmap.apply(document)
        reference = instmap.apply_reference(document)
        assert to_string(fast.tree) == to_string(reference.tree)
        assert _idm_signature(fast) == _idm_signature(reference)
        assert program.reference_fallbacks == before
    assert program.sparse_served > 0


def _mutate_partial(document, rng):
    """Deterministically drop and shuffle element children: every
    resulting instance-edge key stays declared (occurrence counts only
    drop), so the sparse plane must serve every fragment."""
    import copy

    mutated = copy.deepcopy(document)
    changed = False
    for element in mutated.iter_elements():
        kids = element.element_children()
        if len(kids) >= 2 and rng.random() < 0.4:
            order = list(element.children)
            rng.shuffle(order)
            element.children[:] = order
            changed = True
        kids = element.element_children()
        if kids and rng.random() < 0.4:
            element.children.remove(rng.choice(kids))
            changed = True
    return mutated, changed


def _inverse_parity(embedding, instmap, fast, reference) -> None:
    """σd⁻¹ on a partial image either succeeds with identical bytes on
    the compiled and reference paths, or refuses with identical error
    text (dropped children can leave no holder to invert)."""
    from repro.core.errors import InverseError

    inverse = InverseProgram(embedding, instmap._infos)
    try:
        fast_inverse = to_string(inverse.apply(fast.tree))
    except InverseError as error:
        with pytest.raises(InverseError) as reference_error:
            run_invert(embedding, reference.tree)
        assert str(reference_error.value) == str(error)
    else:
        assert to_string(run_invert(embedding, reference.tree)) \
            == fast_inverse


@pytest.mark.parametrize("name", ["bib", "orders", "mondial"])
def test_partial_document_corpora_sparse_identical(name):
    """Randomized partial-document corpora: children dropped and
    shuffled at random.  The sparse-concat plane must serve every
    fragment (no reference fallback — all edges stay declared) with
    byte-identical trees, idM signatures, inverse behaviour and codec
    output."""
    import random

    source = SCHEMA_LIBRARY[name]()
    expansion = expand_schema(source, seed=5)
    instmap = InstMap(expansion.embedding)
    program = instmap._program
    assert program is not None
    codec = generate_codec(instmap)
    rng = random.Random(97)
    served_any = False
    for seed in range(6):
        instance = random_instance(source, seed=seed, max_depth=8)
        mutated, changed = _mutate_partial(instance, rng)
        before = program.reference_fallbacks
        fast = instmap.apply(mutated)
        reference = instmap.apply_reference(mutated)
        assert to_string(fast.tree) == to_string(reference.tree)
        assert _idm_signature(fast) == _idm_signature(reference)
        # Declared-edge shapes never reach the reference builder.
        assert program.reference_fallbacks == before, \
            f"reference fallback on a declared shape (seed {seed})"
        _inverse_parity(expansion.embedding, instmap, fast, reference)
        # The generated codec's splice path serves the same bytes.
        assert codec.map_tree(mutated) == to_string(reference.tree)
        served_any |= changed
    assert served_any and program.sparse_served > 0
