"""Unit tests: <!ELEMENT> parsing and the compact syntax.

This file tests the raw parsers *behind* the schema-frontend
boundary, so it is the one test module allowed to call them
directly.
"""
# lint: allow-frontend-call-module

import pytest

from repro.dtd.model import Concat, Disjunction, Empty, SchemaError, Star, Str
from repro.dtd.parser import (
    DTDParseError,
    parse_compact,
    parse_content_model,
    parse_dtd,
    parse_production,
)
from repro.dtd.normalize import RChoice, RName, ROpt, RPlus, RSeq, RStar


def test_parse_simple_dtd():
    dtd = parse_dtd("""
        <!ELEMENT db (class*)>
        <!ELEMENT class (cno, title)>
        <!ELEMENT cno (#PCDATA)>
        <!ELEMENT title (#PCDATA)>
    """)
    assert dtd.root == "db"
    assert isinstance(dtd.production("cno"), Str)
    # (class*) normalises to a star production via a fresh type or
    # directly — either way instances are class lists.
    assert "class" in dtd.production("db").child_types() or any(
        dtd.production(t) == Star("class") for t in dtd.types)


def test_parse_dtd_with_choice_and_modifiers():
    dtd = parse_dtd("""
        <!ELEMENT a (b?, (c|d)+, e*)>
        <!ELEMENT b (#PCDATA)>
        <!ELEMENT c EMPTY>
        <!ELEMENT d (#PCDATA)>
        <!ELEMENT e (#PCDATA)>
    """)
    production = dtd.production("a")
    assert isinstance(production, Concat)
    assert len(production.children) == 3


def test_parse_dtd_explicit_root():
    dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b EMPTY>", root="b")
    assert dtd.root == "b"


def test_parse_dtd_attlist_and_comments_skipped():
    dtd = parse_dtd("""
        <!-- a comment with <!ELEMENT fake (x)> inside? no: -->
        <!ELEMENT a (b)>
        <!ATTLIST a id CDATA #REQUIRED>
        <!ELEMENT b (#PCDATA)>
    """)
    assert set(dtd.types) == {"a", "b"}


def test_parse_dtd_duplicate_rejected():
    with pytest.raises(DTDParseError):
        parse_dtd("<!ELEMENT a (b)><!ELEMENT a (b)><!ELEMENT b EMPTY>")


def test_parse_dtd_any_rejected():
    with pytest.raises(DTDParseError):
        parse_dtd("<!ELEMENT a ANY>")


def test_parse_dtd_mixed_content_rejected():
    with pytest.raises(DTDParseError):
        parse_dtd("<!ELEMENT a (#PCDATA | b)*><!ELEMENT b EMPTY>")


def test_parse_dtd_undeclared_reference_rejected():
    with pytest.raises(SchemaError, match="undeclared"):
        parse_dtd("<!ELEMENT a (ghost)>")


def test_content_model_ast():
    regex = parse_content_model("(a?, (b | c)+)")
    assert regex == RSeq((ROpt(RName("a")),
                          RPlus(RChoice((RName("b"), RName("c"))))))


def test_content_model_pcdata_star_collapses():
    assert parse_content_model("(#PCDATA)*") == parse_content_model("(#PCDATA)")


def test_content_model_mixed_separators_rejected():
    with pytest.raises(DTDParseError):
        parse_content_model("(a, b | c)")


def test_parse_production_compact_forms():
    assert parse_production("str") == Str()
    assert parse_production("eps") == Empty()
    assert parse_production("a, b, a") == Concat(("a", "b", "a"))
    assert parse_production("a + b") == Disjunction(("a", "b"))
    assert parse_production("a + eps") == Disjunction(("a",), optional=True)
    assert parse_production("a*") == Star("a")


def test_parse_production_bad_star():
    with pytest.raises(DTDParseError):
        parse_production("a, b*")


def test_parse_compact_comments_and_root():
    dtd = parse_compact("""
        # the root
        r -> a   # trailing comment
        a -> str
    """)
    assert dtd.root == "r"
    assert isinstance(dtd.production("a"), Str)


def test_parse_compact_duplicate_rejected():
    with pytest.raises(DTDParseError):
        parse_compact("r -> a\nr -> b\na -> str\nb -> str")


def test_parse_compact_requires_arrow():
    with pytest.raises(DTDParseError):
        parse_compact("r a")
