"""The static-analysis pass: each checker fires on a known-bad golden
fixture, stays quiet on the shipped tree, and the baseline round-trips
(add, match, expire).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    CHECKERS,
    LintError,
    apply_baseline,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.cli import main as cli_main

REPO = Path(__file__).resolve().parent.parent
LINT_TARGETS = [REPO / "src", REPO / "tests", REPO / "benchmarks",
                REPO / "examples"]


def write_pkg(tmp_path: Path, files: dict) -> Path:
    """Lay out fixture files under ``<tmp>/src/`` with the package
    ``__init__.py`` chain the module-name detection requires."""
    root = tmp_path / "src"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        package_dir = path.parent
        while package_dir != root and package_dir != tmp_path:
            init = package_dir / "__init__.py"
            if not init.exists():
                init.write_text("")
            package_dir = package_dir.parent
    return root


def codes(findings) -> set:
    return {finding.code for finding in findings}


# ---------------------------------------------------------------------------
# layering


def test_layering_flags_module_level_upward_import(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/core/bad.py":
            "from repro.engine.session import default_engine\n",
    })
    findings = run_lint([root], root=tmp_path, checkers=["layering"])
    assert codes(findings) == {"layering/plane-imports-engine"}


def test_layering_flags_unmarked_lazy_import(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/xpath/bad.py": (
            "def wrapper():\n"
            "    from repro.serve.server import ReproServer\n"
            "    return ReproServer\n"),
    })
    findings = run_lint([root], root=tmp_path, checkers=["layering"])
    assert codes(findings) == {"layering/lazy-import-unmarked"}


def test_layering_accepts_marked_lazy_import(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/xpath/good.py": (
            "def wrapper():\n"
            "    # lint: allow-lazy-import\n"
            "    from repro.serve.server import ReproServer\n"
            "    return ReproServer\n"),
    })
    assert run_lint([root], root=tmp_path, checkers=["layering"]) == []


def test_layering_flags_frontend_boundary_call(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/workloads/bad.py": (
            "from repro.api import parse_dtd\n"
            "def load(text):\n"
            "    return parse_dtd(text)\n"),
        # The dtd package itself may call its own parsers.
        "repro/dtd/fine.py": (
            "def load(text):\n"
            "    return parse_compact(text)\n"),
    })
    findings = run_lint([root], root=tmp_path, checkers=["layering"])
    assert codes(findings) == {"layering/frontend-boundary"}
    assert all("workloads/bad.py" in finding.path for finding in findings)


# ---------------------------------------------------------------------------
# determinism


DETERMINISM_BAD = """\
# lint: determinism-plane
import random
import time


def render(items, mapping):
    for item in set(items):
        use(item)
    order = [key for key in {1, 2, 3}]
    token = id(mapping)
    seed = hash("tag")
    stamp = time.time()
    jitter = random.random()
    return order, token, seed, stamp, jitter
"""


def test_determinism_flags_every_hazard(tmp_path):
    root = write_pkg(tmp_path, {"repro/extras/canon.py": DETERMINISM_BAD})
    findings = run_lint([root], root=tmp_path, checkers=["determinism"])
    assert codes(findings) == {
        "determinism/set-iteration",
        "determinism/id",
        "determinism/hash",
        "determinism/wall-clock",
        "determinism/random",
    }
    # Both set iterations (for-loop and comprehension) are caught.
    assert sum(finding.code == "determinism/set-iteration"
               for finding in findings) == 2


def test_determinism_ignores_sorted_sets_and_other_modules(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/extras/canon.py": (
            "# lint: determinism-plane\n"
            "def render(items):\n"
            "    for item in sorted(set(items)):\n"
            "        use(item)\n"
            "    for item in dict.fromkeys(items):\n"
            "        use(item)\n"),
        # Same hazards outside the plane: not this checker's business.
        "repro/extras/free.py": "import random\nX = random.random()\n",
    })
    assert run_lint([root], root=tmp_path,
                    checkers=["determinism"]) == []


def test_determinism_function_level_allow_marker(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/extras/canon.py": (
            "# lint: determinism-plane\n"
            "# lint: allow-id\n"
            "def render(mapping):\n"
            "    names = {id(mapping): 'M0'}\n"
            "    return names\n"),
    })
    assert run_lint([root], root=tmp_path,
                    checkers=["determinism"]) == []


# ---------------------------------------------------------------------------
# recursion


def test_recursion_flags_direct_and_mutual_cycles(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/extras/walk.py": (
            "# lint: recursion-plane\n"
            "def serialize(node):\n"
            "    return [serialize(child) for child in node.children]\n"
            "\n"
            "def even(n):\n"
            "    return n == 0 or odd(n - 1)\n"
            "\n"
            "def odd(n):\n"
            "    return n != 0 and even(n - 1)\n"),
    })
    findings = run_lint([root], root=tmp_path, checkers=["recursion"])
    assert codes(findings) == {"recursion/document-plane-cycle"}
    assert len(findings) == 2  # serialize self-loop + even<->odd
    messages = " ".join(finding.message for finding in findings)
    assert "serialize" in messages and "even" in messages


def test_recursion_resolves_methods_and_honours_marker(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/extras/walk.py": (
            "# lint: recursion-plane\n"
            "class Walker:\n"
            "    def descend(self, node):\n"
            "        for child in node.children:\n"
            "            self.descend(child)\n"),
    })
    findings = run_lint([root], root=tmp_path, checkers=["recursion"])
    assert codes(findings) == {"recursion/document-plane-cycle"}

    root = write_pkg(tmp_path / "ok", {
        "repro/extras/walk.py": (
            "# lint: recursion-plane\n"
            "class Walker:\n"
            "    # Bounded by schema depth, not document depth.\n"
            "    # lint: allow-recursion\n"
            "    def descend(self, node):\n"
            "        for child in node.children:\n"
            "            self.descend(child)\n"),
    })
    assert run_lint([root], root=tmp_path / "ok",
                    checkers=["recursion"]) == []


def test_recursion_quiet_on_iterative_walkers(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/extras/walk.py": (
            "# lint: recursion-plane\n"
            "def serialize(root):\n"
            "    stack = [root]\n"
            "    while stack:\n"
            "        node = stack.pop()\n"
            "        stack.extend(node.children)\n"),
    })
    assert run_lint([root], root=tmp_path, checkers=["recursion"]) == []


# ---------------------------------------------------------------------------
# fork safety


FORK_BAD_THREAD = """\
# lint: fork-plane
import multiprocessing
import threading


class Fleet:
    def spawn(self):
        process = multiprocessing.Process(target=work)
        process.start()

    def start(self):
        monitor = threading.Thread(target=watch)
        monitor.start()
        self.spawn()
"""

FORK_BAD_LOCK = """\
# lint: fork-plane
import multiprocessing


class Fleet:
    def spawn(self):
        process = multiprocessing.Process(target=work)
        process.start()

    def start(self):
        with self._lock:
            self.spawn()
"""

FORK_GOOD = """\
# lint: fork-plane
import multiprocessing
import threading


class Fleet:
    def spawn(self):
        process = multiprocessing.Process(target=work)
        process.start()

    def start(self):
        self.spawn()
        monitor = threading.Thread(target=watch)
        monitor.start()
"""


def test_forksafety_flags_thread_started_before_fork(tmp_path):
    root = write_pkg(tmp_path,
                     {"repro/extras/fleet.py": FORK_BAD_THREAD})
    findings = run_lint([root], root=tmp_path, checkers=["forksafety"])
    assert codes(findings) == {"forksafety/thread-before-fork"}


def test_forksafety_flags_lock_held_across_fork(tmp_path):
    root = write_pkg(tmp_path, {"repro/extras/fleet.py": FORK_BAD_LOCK})
    findings = run_lint([root], root=tmp_path, checkers=["forksafety"])
    assert codes(findings) == {"forksafety/lock-across-fork"}


def test_forksafety_quiet_when_thread_starts_after_fork(tmp_path):
    root = write_pkg(tmp_path, {"repro/extras/fleet.py": FORK_GOOD})
    assert run_lint([root], root=tmp_path,
                    checkers=["forksafety"]) == []


def test_forksafety_flags_os_fork_outside_supervisor(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/extras/rogue.py": (
            "import os\n"
            "def split():\n"
            "    return os.fork()\n"),
    })
    findings = run_lint([root], root=tmp_path, checkers=["forksafety"])
    assert codes(findings) == {"forksafety/fork-outside-supervisor"}


# ---------------------------------------------------------------------------
# error contract


def test_errors_flags_escaping_error_type(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/extras/errors.py": (
            "class FineError(ValueError):\n"
            "    pass\n"
            "class StillFine(FineError):\n"
            "    pass\n"
            "class DiskError(OSError):\n"
            "    pass\n"
            "class EscapesError(RuntimeError):\n"
            "    pass\n"),
    })
    findings = run_lint([root], root=tmp_path, checkers=["errors"])
    assert codes(findings) == {"errors/escaping-error-type"}
    assert len(findings) == 1
    assert "EscapesError" in findings[0].message


def test_errors_honours_allow_marker(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/extras/errors.py": (
            "# internal control-flow signal, must stay loud\n"
            "# lint: allow-error-type\n"
            "class SignalError(Exception):\n"
            "    pass\n"),
    })
    assert run_lint([root], root=tmp_path, checkers=["errors"]) == []


def test_errors_flags_uncatchable_raise_in_entry_module(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/cli.py": (
            "def main(argv=None):\n"
            "    if not argv:\n"
            "        raise KeyError('missing')\n"
            "    raise ValueError('fine')\n"),
    })
    findings = run_lint([root], root=tmp_path, checkers=["errors"])
    assert codes(findings) == {"errors/entrypoint-raises-uncatchable"}
    assert len(findings) == 1


# ---------------------------------------------------------------------------
# the shipped tree is lint-clean


def test_shipped_tree_has_zero_findings():
    findings = run_lint(LINT_TARGETS, root=REPO)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_stream_and_codec_plane_markers_opt_into_recursion(tmp_path):
    # The streaming/codec plane markers enrol a module in the
    # document-plane recursion checker (generated codecs carry
    # codec-plane in their header and must land recursion-free).
    for marker in ("stream-plane", "codec-plane"):
        root = write_pkg(tmp_path / marker, {
            "repro/plugin/walker.py":
                f"# lint: {marker}\n"
                "def walk(node):\n"
                "    for child in node.children:\n"
                "        walk(child)\n",
        })
        findings = run_lint([root], root=tmp_path / marker,
                            checkers=["recursion"])
        assert codes(findings) == {"recursion/document-plane-cycle"}, marker


def test_stream_and_codec_plane_markers_opt_into_determinism(tmp_path):
    for marker in ("stream-plane", "codec-plane"):
        root = write_pkg(tmp_path / marker, {
            "repro/plugin/emit.py":
                f"# lint: {marker}\n"
                "def emit(tags):\n"
                "    return [t for t in {x for x in tags}]\n",
        })
        findings = run_lint([root], root=tmp_path / marker,
                            checkers=["determinism"])
        assert codes(findings) == {"determinism/set-iteration"}, marker


def test_codecgen_checker_passes_on_the_shipped_generator():
    findings = run_lint([REPO / "src" / "repro" / "engine" / "codegen.py"],
                        root=REPO, checkers=["codecgen"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_every_checker_ran_on_the_shipped_tree():
    # A checker silently dropping out of CHECKERS would make the
    # clean-tree test vacuous for its invariant.
    assert set(CHECKERS) == {"layering", "determinism", "recursion",
                             "forksafety", "errors", "codecgen"}


# ---------------------------------------------------------------------------
# baseline round-trip


def test_baseline_add_match_expire_roundtrip(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/core/bad.py":
            "from repro.engine.session import default_engine\n",
    })
    findings = run_lint([root], root=tmp_path, checkers=["layering"])
    assert findings

    baseline_path = tmp_path / "lint-baseline.json"
    count = write_baseline(findings, baseline_path,
                           justification="grandfathered pending refactor")
    assert count == 1

    # Same findings + baseline: nothing new, nothing stale.
    entries = load_baseline(baseline_path)
    match = apply_baseline(findings, entries)
    assert match.new == [] and match.stale == []
    assert len(match.baselined) == 1

    # Baselines are line-number independent: the finding moving down
    # the file still matches.
    (root / "repro/core/bad.py").write_text(
        "\"\"\"doc\"\"\"\nimport os\n\n"
        "from repro.engine.session import default_engine\n")
    moved = run_lint([root], root=tmp_path, checkers=["layering"])
    assert moved[0].line != findings[0].line
    assert apply_baseline(moved, entries).new == []

    # Fixing the finding leaves the entry stale (expire signal).
    (root / "repro/core/bad.py").write_text("import os\n")
    clean = run_lint([root], root=tmp_path, checkers=["layering"])
    match = apply_baseline(clean, entries)
    assert match.new == [] and match.baselined == []
    assert match.stale == [findings[0].key]


def test_baseline_requires_justifications(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(
        {"version": 1, "entries": [{"key": "a::b::c"}]}))
    with pytest.raises(LintError, match="justification"):
        load_baseline(path)
    path.write_text("not json")
    with pytest.raises(LintError, match="JSON"):
        load_baseline(path)


def test_baseline_counts_duplicate_keys(tmp_path):
    root = write_pkg(tmp_path, {
        "repro/core/bad.py": (
            "def first():\n"
            "    from repro.engine.session import default_engine\n"
            "def second():\n"
            "    from repro.engine.session import default_engine\n"),
    })
    findings = run_lint([root], root=tmp_path, checkers=["layering"])
    assert len(findings) == 2
    assert findings[0].key == findings[1].key

    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, baseline_path, justification="both known")
    entries = load_baseline(baseline_path)
    assert entries[findings[0].key]["count"] == 2
    match = apply_baseline(findings, entries)
    assert match.new == [] and len(match.baselined) == 2
    # Only one occurrence baselined -> the second is new again.
    entries[findings[0].key]["count"] = 1
    match = apply_baseline(findings, entries)
    assert len(match.new) == 1 and len(match.baselined) == 1


# ---------------------------------------------------------------------------
# CLI surface


def test_cli_lint_exit_codes_and_json(tmp_path, capsys):
    root = write_pkg(tmp_path, {
        "repro/core/bad.py":
            "from repro.engine.session import default_engine\n",
    })
    assert cli_main(["lint", str(root), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["code"] == "layering/plane-imports-engine"
    assert payload["baselined"] == 0

    baseline = tmp_path / "baseline.json"
    assert cli_main(["lint", str(root), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
    capsys.readouterr()
    assert cli_main(["lint", str(root), "--baseline",
                     str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out

    clean = write_pkg(tmp_path / "clean",
                      {"repro/core/fine.py": "X = 1\n"})
    assert cli_main(["lint", str(clean)]) == 0


def test_cli_lint_bad_inputs_exit_2(tmp_path, capsys):
    assert cli_main(["lint", str(tmp_path / "missing")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert cli_main(["lint", "--checks", "nonsense",
                     str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "unknown checker" in err


def test_cli_lint_checker_subset(tmp_path, capsys):
    root = write_pkg(tmp_path, {
        "repro/core/bad.py":
            "from repro.engine.session import default_engine\n",
    })
    # The layering finding is invisible to a determinism-only run.
    assert cli_main(["lint", str(root), "--checks",
                     "determinism"]) == 0
    capsys.readouterr()
