"""E7: schema-directed query translation (Section 4.4, Theorem 4.2).

Includes the Example 4.7/4.8 reproduction: the CS331-prerequisites
query over the class DTD translates to the courses/current/… query of
Fig. 6, and both agree on instances modulo ``idM``.
"""

import pytest

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.instmap import InstMap
from repro.core.translate import Translator, translate_query
from repro.dtd.generate import random_instance
from repro.xpath.ast import query_size
from repro.xpath.evaluator import evaluate_set
from repro.xpath.parser import parse_xr
from repro.xtree.parser import parse_xml


def _preserved(embedding, query, instance, mapped=None, translator=None):
    mapped = mapped or InstMap(embedding).apply(instance)
    anfa = (translator or Translator(embedding)).translate(query)
    source_result = evaluate_set(query, instance)
    target_result = evaluate_anfa_set(anfa, mapped.tree)
    mapped_back = target_result.map_ids(mapped.idM)
    return (mapped_back.ids == source_result.ids
            and mapped_back.strings == source_result.strings)


SCHOOL_QUERIES = [
    ".",
    "class",
    "class/cno",
    "class/cno/text()",
    "class/type",
    "class/type/regular | class/type/project",
    "class/type/project/text()",
    "class[cno/text()='CS331']",
    "class[position()=2]",
    "class[position()=1]/title/text()",
    "class[type/regular]/cno/text()",
    "class[not(type/regular)]",
    "(class/type/regular/prereq/class)*",
    "class[cno/text()='CS331']/(type/regular/prereq/class)*",
    "class/(type/(regular | project))",
    "//cno/text()",
    "//class",
    "class[type/regular and position()=1]",
    "(class)*[cno]",
]


@pytest.fixture(scope="module")
def cs331_doc():
    """A prerequisite chain: CS331 <- CS240 <- CS101."""
    return parse_xml(
        "<db>"
        "<class><cno>CS331</cno><title>Databases</title>"
        "<type><regular><prereq>"
        "<class><cno>CS240</cno><title>Systems</title>"
        "<type><regular><prereq>"
        "<class><cno>CS101</cno><title>Intro</title>"
        "<type><project>build</project></type></class>"
        "</prereq></regular></type></class>"
        "</prereq></regular></type></class>"
        "<class><cno>MA001</cno><title>Calc</title>"
        "<type><project>none</project></type></class>"
        "</db>")


@pytest.mark.parametrize("source", SCHOOL_QUERIES)
def test_query_preserved_on_school(school, cs331_doc, source):
    query = parse_xr(source)
    assert _preserved(school.sigma1, query, cs331_doc)


def test_example_4_8_prerequisites(school, cs331_doc):
    """Q = class[cno/text()='CS331']/(type/regular/prereq/class)* finds
    all (direct or indirect) prerequisites of CS331 (Example 4.8)."""
    query = parse_xr(
        "class[cno/text()='CS331']/(type/regular/prereq/class)*")
    source_result = evaluate_set(query, cs331_doc)
    # CS331 itself plus CS240 and CS101 = 3 class nodes.
    assert len(source_result.ids) == 3

    mapped = InstMap(school.sigma1).apply(cs331_doc)
    anfa = translate_query(school.sigma1, query)
    target_result = evaluate_anfa_set(anfa, mapped.tree)
    assert target_result.map_ids(mapped.idM).ids == source_result.ids


def test_example_4_7_translated_shape(school):
    """The translated automaton walks the Fig. 6 label sequence
    courses/current/course[…]/(category/mandatory/regular/required/
    prereq/course)*."""
    query = parse_xr(
        "class[cno/text()='CS331']/(type/regular/prereq/class)*")
    anfa = translate_query(school.sigma1, query)
    description = anfa.describe()
    for label in ["courses", "current", "course", "category", "mandatory",
                  "regular", "required", "prereq"]:
        assert f"--{label}--" in description
    # The qualifier becomes a ν-referenced sub-automaton (basic/cno).
    sub_names = anfa.nu()
    assert sub_names, "qualifier sub-automaton missing"


def test_translation_size_bound(school):
    """|Tr(Q)| = O(|Q| · |σ| · |S1|) (Theorem 4.3(b))."""
    sigma = school.sigma1
    factor = sigma.size() * sigma.source.node_count()
    translator = Translator(sigma)
    for source in SCHOOL_QUERIES:
        query = parse_xr(source)
        anfa = translator.translate(query)
        assert anfa.size() <= query_size(query) * factor


def test_unknown_labels_translate_to_fail(school):
    anfa = translate_query(school.sigma1, parse_xr("ghost/label"))
    assert anfa.is_fail()


def test_text_on_non_str_type_fails(school):
    anfa = translate_query(school.sigma1, parse_xr("class/text()"))
    assert anfa.is_fail()


def test_translation_at_inner_context(school):
    """Trl(Q1, A) — translation relative to a non-root type."""
    instance = parse_xml(
        "<db><class><cno>1</cno><title>t</title>"
        "<type><regular><prereq/></regular></type></class></db>")
    mapped = InstMap(school.sigma1).apply(instance)
    anfa = translate_query(school.sigma1, parse_xr("cno/text()"),
                           context_type="class")
    # Evaluate at the image of the class node.
    class_node = instance.children_tagged("class")[0]
    image_id = mapped.source_to_target[class_node.node_id]
    image = mapped.tree.find_by_id(image_id)
    result = evaluate_anfa_set(anfa, image)
    assert result.strings == frozenset({"1"})


def test_union_continues_per_branch_type(school, cs331_doc):
    """(B ∪ C)/D-style queries need per-lab continuations — the
    first mis-translation hazard of Section 4.4."""
    query = parse_xr("class/type/(regular | project)/"
                     "(prereq | text())")
    # regular continues with prereq; project with text().
    assert _preserved(school.sigma1, query, cs331_doc)


def test_star_iteration_covers_all_types(bib_expansion):
    from repro.workloads.queries import random_queries

    source = bib_expansion.source
    instance = random_instance(source, seed=2)
    mapped = InstMap(bib_expansion.embedding).apply(instance)
    translator = Translator(bib_expansion.embedding)
    for query in random_queries(source, 12, seed=5):
        assert _preserved(bib_expansion.embedding, query, instance,
                          mapped, translator), str(query)


def test_memoisation_stable(school):
    translator = Translator(school.sigma1)
    query = parse_xr("(class/type/regular/prereq/class)*")
    first = translator.translate(query)
    second = translator.translate(query)
    assert first.size() == second.size()
