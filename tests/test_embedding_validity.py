"""Unit tests: schema embedding validity conditions (Section 4.1 + R1/R2)."""

import pytest

from repro.core.embedding import STR_KEY, SchemaEmbedding, build_embedding
from repro.core.errors import EmbeddingError, ViolationCode
from repro.core.similarity import SimilarityMatrix
from repro.schema import load_schema


def _codes(embedding, att=None):
    return {v.code for v in embedding.violations(att)}


def test_school_sigma1_valid(school):
    assert school.sigma1.violations() == []
    assert school.sigma1.is_valid(school.att)
    school.sigma1.check(school.att)  # must not raise


def test_school_sigma2_valid(school):
    assert school.sigma2.is_valid(school.att)


def test_missing_path_detected():
    source = load_schema("a -> b\nb -> str")
    target = load_schema("x -> y\ny -> str")
    embedding = build_embedding(source, target, {"a": "x", "b": "y"},
                                {("a", "b"): "y"})
    assert ViolationCode.MISSING_PATH in _codes(embedding)  # b's text path


def test_root_must_map_to_root():
    source = load_schema("a -> b\nb -> str")
    target = load_schema("x -> y\ny -> str")
    embedding = build_embedding(source, target, {"a": "y", "b": "y"},
                                {("a", "b"): "y", ("b", "str"): "text()"})
    assert ViolationCode.BAD_ROOT in _codes(embedding)


def test_lambda_total():
    source = load_schema("a -> b\nb -> str")
    target = load_schema("x -> y\ny -> str")
    embedding = SchemaEmbedding(source, target, {"a": "x"}, {})
    assert ViolationCode.LAMBDA_MISSING in _codes(embedding)


def test_att_validity_threshold():
    source = load_schema("a -> b\nb -> str")
    target = load_schema("x -> y\ny -> str")
    embedding = build_embedding(source, target, {"a": "x", "b": "y"},
                                {("a", "b"): "y", ("b", "str"): "text()"})
    att = SimilarityMatrix()      # all zeros
    assert ViolationCode.LAMBDA_INVALID in _codes(embedding, att)
    att.set("a", "x", 0.9)
    att.set("b", "y", 0.1)
    assert embedding.is_valid(att)


def test_and_edge_needs_and_path():
    """Fig. 3(a): concatenation onto disjunction is invalid."""
    source = load_schema("a -> b, c\nb -> str\nc -> str")
    target = load_schema("x -> y + z\ny -> str\nz -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y", "c": "z"},
        {("a", "b"): "y", ("a", "c"): "z",
         ("b", "str"): "text()", ("c", "str"): "text()"})
    assert ViolationCode.NOT_AND_PATH in _codes(embedding)


def test_star_edge_needs_star_path():
    """Fig. 3(b): star onto a single child is invalid."""
    source = load_schema("a -> b*\nb -> str")
    target = load_schema("x -> y\ny -> str")
    embedding = build_embedding(source, target, {"a": "x", "b": "y"},
                                {("a", "b"): "y", ("b", "str"): "text()"})
    assert ViolationCode.NOT_STAR_PATH in _codes(embedding)


def test_prefix_conflict_detected():
    """Fig. 3(d): path(A,B) a prefix of path(A,C)."""
    source = load_schema("a -> b, c\nb -> str\nc -> str")
    target = load_schema("x -> y\ny -> z\nz -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y", "c": "z"},
        {("a", "b"): "y", ("a", "c"): "y/z",
         ("b", "str"): "text()", ("c", "str"): "text()"})
    assert ViolationCode.PREFIX_CONFLICT in _codes(embedding)


def test_equal_paths_are_prefix_conflict():
    source = load_schema("a -> b, c\nb -> str\nc -> str")
    target = load_schema("x -> y, z\ny -> str\nz -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y", "c": "y"},
        {("a", "b"): "y", ("a", "c"): "y",
         ("b", "str"): "text()", ("c", "str"): "text()"})
    assert ViolationCode.PREFIX_CONFLICT in _codes(embedding)


def test_or_divergence_refinement_r1():
    """Two OR paths sharing the OR edge but diverging on AND edges are
    rejected (mindef padding would fake the absent alternative)."""
    source = load_schema("a -> b + c\nb -> str\nc -> str")
    target = load_schema("x -> w + v\nw -> y, z\nv -> str\n"
                           "y -> str\nz -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y", "c": "z"},
        {("a", "b"): "w/y", ("a", "c"): "w/z",
         ("b", "str"): "text()", ("c", "str"): "text()"})
    assert ViolationCode.OR_DIVERGENCE in _codes(embedding)


def test_or_divergence_valid_when_alternatives_differ():
    source = load_schema("a -> b + c\nb -> str\nc -> str")
    target = load_schema("x -> w + v\nw -> y\nv -> z\ny -> str\nz -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y", "c": "z"},
        {("a", "b"): "w/y", ("a", "c"): "v/z",
         ("b", "str"): "text()", ("c", "str"): "text()"})
    assert embedding.is_valid()


def test_optional_signalling_refinement_r2():
    """An optional alternative whose path appears in the default
    completion of λ(A) is rejected."""
    source = load_schema("a -> b + eps\nb -> str")
    # Target disjunction is NOT optional: mindef picks an alternative,
    # and the only alternative is the path itself.
    target = load_schema("x -> y + z\ny -> str\nz -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y"},
        {("a", "b"): "y", ("b", "str"): "text()"})
    assert ViolationCode.OPTIONAL_SIGNAL in _codes(embedding)
    # With an alphabetically-earlier junk alternative, mindef picks the
    # junk and the signal is unambiguous.
    target2 = load_schema("x -> a0pad + y\na0pad -> eps\ny -> str")
    embedding2 = build_embedding(
        source, target2, {"a": "x", "b": "y"},
        {("a", "b"): "y", ("b", "str"): "text()"})
    assert embedding2.is_valid()


def test_wrong_endpoint_detected():
    source = load_schema("a -> b\nb -> str")
    target = load_schema("x -> y, z\ny -> str\nz -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y"},
        {("a", "b"): "z", ("b", "str"): "text()"})
    assert ViolationCode.WRONG_ENDPOINT in _codes(embedding)


def test_empty_path_rejected():
    from repro.xpath.paths import XRPath

    source = load_schema("a -> b\nb -> str")
    target = load_schema("x -> y\ny -> str")
    embedding = SchemaEmbedding(
        source, target, {"a": "x", "b": "y"},
        {("a", "b", 1): XRPath(()),
         ("b", STR_KEY, 1): XRPath((), text=True)})
    assert ViolationCode.EMPTY_PATH in _codes(embedding)


def test_text_path_must_end_in_text():
    source = load_schema("a -> b\nb -> str")
    target = load_schema("x -> y\ny -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y"},
        {("a", "b"): "y", ("b", "str"): XRPathNoText()})
    assert ViolationCode.NOT_TEXT_PATH in _codes(embedding)


def XRPathNoText():
    from repro.xpath.paths import XRPath

    return XRPath.parse("y")  # element path, no text()


def test_check_raises_with_all_violations():
    source = load_schema("a -> b*\nb -> str")
    target = load_schema("x -> y\ny -> str")
    embedding = build_embedding(source, target, {"a": "x", "b": "y"},
                                {("a", "b"): "y", ("b", "str"): "text()"})
    with pytest.raises(EmbeddingError) as err:
        embedding.check()
    assert "NOT_STAR_PATH" in str(err.value)


def test_quality_metric(school):
    att = SimilarityMatrix.permissive(0.5)
    assert school.sigma1.quality(att) == pytest.approx(
        0.5 * len(school.sigma1.lam))


def test_size_metric(school):
    assert school.sigma1.size() > len(school.sigma1.lam)


def test_repeated_children_share_paths_via_positions():
    """Fig. 3(c): two source types onto one target type."""
    source = load_schema("a -> b, c\nb -> str\nc -> str")
    target = load_schema("x -> y, y\ny -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y", "c": "y"},
        {("a", "b"): "y[position()=1]", ("a", "c"): "y[position()=2]",
         ("b", "str"): "text()", ("c", "str"): "text()"})
    assert embedding.is_valid()
