"""XSLT-subset engine tests (the Section 4.3 processing model)."""

import pytest

from repro.xpath.paths import XRPath
from repro.xslt.engine import XSLTError, apply_stylesheet
from repro.xslt.model import (
    OutApply,
    OutElem,
    OutText,
    Pattern,
    Select,
    Stylesheet,
    TemplateRule,
    select_nodes,
)
from repro.xtree.nodes import TextNode
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

DOC = parse_xml("<db><rec><k>a</k><v>1</v></rec><rec><k>b</k><v>2</v></rec></db>")


def _sheet(*rules, initial_mode=None):
    sheet = Stylesheet(initial_mode=initial_mode)
    for rule in rules:
        sheet.add(rule)
    return sheet


def test_literal_output():
    sheet = _sheet(TemplateRule(Pattern("db"), [OutElem("out")]))
    result = apply_stylesheet(sheet, DOC)
    assert to_string(result, indent=None) == "<out/>"


def test_apply_templates_select_and_recurse():
    sheet = _sheet(
        TemplateRule(Pattern("db"), [
            OutElem("keys", [OutApply(Select(XRPath.parse("rec/k")))])]),
        TemplateRule(Pattern("k"), [
            OutElem("key", [OutApply(Select(XRPath((), text=True)))])]))
    result = apply_stylesheet(sheet, DOC)
    assert to_string(result, indent=None) == \
        "<keys><key>a</key><key>b</key></keys>"


def test_builtin_text_copy():
    sheet = _sheet(
        TemplateRule(Pattern("db"), [
            OutElem("t", [OutApply(Select(XRPath.parse("rec/v/text()")))])]))
    result = apply_stylesheet(sheet, DOC)
    assert to_string(result, indent=None) == "<t>12</t>"


def test_modes_partition_rules():
    sheet = _sheet(
        TemplateRule(Pattern("db"), [
            OutElem("r", [OutApply(Select(XRPath.parse("rec")), mode="m1"),
                          OutApply(Select(XRPath.parse("rec")), mode="m2")])]),
        TemplateRule(Pattern("rec"), [OutElem("one")], mode="m1"),
        TemplateRule(Pattern("rec"), [OutElem("two")], mode="m2"))
    result = apply_stylesheet(sheet, DOC)
    assert to_string(result, indent=None) == \
        "<r><one/><one/><two/><two/></r>"


def test_qualified_pattern_beats_bare():
    sheet = _sheet(
        TemplateRule(Pattern("rec"), [OutElem("plain")]),
        TemplateRule(Pattern("rec", XRPath.parse("k")), [OutElem("has-k")]),
        TemplateRule(Pattern("db"), [
            OutElem("r", [OutApply(Select(XRPath.parse("rec")))])]))
    result = apply_stylesheet(sheet, DOC)
    assert to_string(result, indent=None) == "<r><has-k/><has-k/></r>"


def test_select_self():
    sheet = _sheet(
        TemplateRule(Pattern("db"), [
            OutElem("r", [OutApply(Select(XRPath.parse("rec")), mode="w")])]),
        TemplateRule(Pattern("rec"), [OutApply(Select(None))], mode="w"),
        TemplateRule(Pattern("rec"), [OutElem("leaf")]))
    result = apply_stylesheet(sheet, DOC)
    assert to_string(result, indent=None) == "<r><leaf/><leaf/></r>"


def test_positional_select():
    sheet = _sheet(
        TemplateRule(Pattern("db"), [
            OutElem("r", [OutApply(Select(
                XRPath.parse("rec[position()=2]/k/text()")))])]))
    result = apply_stylesheet(sheet, DOC)
    assert to_string(result, indent=None) == "<r>b</r>"


def test_missing_rule_is_error():
    sheet = _sheet(TemplateRule(Pattern("db"), [
        OutApply(Select(XRPath.parse("rec")))]))
    with pytest.raises(XSLTError):
        apply_stylesheet(sheet, DOC)


def test_initial_mode():
    sheet = _sheet(
        TemplateRule(Pattern("db"), [OutElem("wrong")]),
        TemplateRule(Pattern("db"), [OutElem("right")], mode="start"),
        initial_mode="start")
    result = apply_stylesheet(sheet, DOC)
    assert result.tag == "right"


def test_multiple_top_level_nodes_rejected():
    sheet = _sheet(TemplateRule(Pattern("db"),
                                [OutElem("a"), OutElem("b")]))
    with pytest.raises(XSLTError):
        apply_stylesheet(sheet, DOC)


def test_select_nodes_returns_text_nodes():
    rec = DOC.element_children()[0]
    nodes = select_nodes(rec, Select(XRPath.parse("v/text()")))
    assert len(nodes) == 1 and isinstance(nodes[0], TextNode)
    assert nodes[0].value == "1"


def test_output_text_literal():
    sheet = _sheet(TemplateRule(Pattern("db"), [
        OutElem("pad", [OutText("#s")])]))
    result = apply_stylesheet(sheet, DOC)
    assert to_string(result, indent=None) == "<pad>#s</pad>"
