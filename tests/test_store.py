"""The persistent artifact store: fingerprint-exact round trips and
Engine.save_store / Engine.warm_start.

The contract under test:

* schemas/embeddings reload with *identical* content fingerprints (so
  a warm-started engine's caches key exactly as the saver's did);
* a warm-started engine serves every known artifact with zero compile
  misses and returns results identical to a fresh serial engine;
* stored search results are served as cache hits in the new process;
* corrupt or alien directories fail loudly with StoreError.
"""

from __future__ import annotations

import json

import pytest

from repro.core.embedding import build_embedding
from repro.core.instmap import InstMap
from repro.dtd.generate import InstanceGenerator
from repro.dtd.model import Concat, Disjunction, Empty, Star, Str
from repro.schema import load_schema
from repro.engine import ArtifactStore, Engine, StoreError
from repro.engine.store import (
    dtd_from_payload,
    dtd_to_payload,
    production_from_payload,
    production_to_payload,
)
from repro.xtree.nodes import tree_equal


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


# -- structural payload round trips ------------------------------------------

def test_production_payload_roundtrip():
    for production in (Str(), Empty(), Concat(("b", "c", "b")),
                       Disjunction(("b", "c")),
                       Disjunction(("b",), optional=True),
                       Disjunction(("b",)),  # ambiguous in compact text
                       Star("b")):
        rebuilt = production_from_payload(production_to_payload(production))
        assert rebuilt == production


def test_dtd_payload_is_fingerprint_exact():
    # Definition order is content (it drives matching enumeration), so
    # the payload must preserve it even when the root is not first.
    dtd = load_schema("b -> str\na -> b, c\nc -> b*", root="a", name="s")
    rebuilt = dtd_from_payload(dtd_to_payload(dtd))
    assert rebuilt.fingerprint() == dtd.fingerprint()
    assert rebuilt.types == dtd.types
    assert rebuilt.name == dtd.name


# -- schema / embedding storage ----------------------------------------------

def test_schema_store_roundtrip(store, school):
    fingerprint = store.put_schema(school.school)
    reloaded = ArtifactStore(store.root, create=False)
    assert reloaded.get_schema(fingerprint).fingerprint() == fingerprint
    assert reloaded.schema_fingerprints() == [fingerprint]
    # Idempotent: putting again changes nothing.
    assert store.put_schema(school.school) == fingerprint
    # No provenance given: records as the dtd format, no source file.
    assert reloaded.schema_format(fingerprint) == "dtd"
    assert reloaded.schema_source_text(fingerprint) is None


def test_schema_store_records_format_and_source_text(store, school):
    from repro.dtd.serialize import dtd_to_compact

    text = dtd_to_compact(school.classes)
    fingerprint = store.put_schema(school.classes, format="compact",
                                   source_text=text)
    reloaded = ArtifactStore(store.root, create=False)
    assert reloaded.schema_format(fingerprint) == "compact"
    assert reloaded.schema_source_text(fingerprint) == text
    assert (store.root / "sources" / f"{fingerprint}.txt").exists()
    # A later put may *add* provenance to a bare record, never lose it.
    bare = store.put_schema(school.students)
    assert store.schema_format(bare) == "dtd"
    store.put_schema(school.students, format="xsd", source_text="<xsd/>")
    assert store.schema_format(bare) == "xsd"
    assert store.schema_source_text(bare) == "<xsd/>"
    # A format flip without matching source text keeps (format, source)
    # pinned and consistent …
    store.put_schema(school.classes, format="dtd")
    assert store.schema_format(fingerprint) == "compact"
    assert store.schema_source_text(fingerprint) == text
    # … while a flip WITH new text updates both together.
    from repro.dtd.serialize import dtd_to_text
    dtd_text = dtd_to_text(school.classes)
    store.put_schema(school.classes, format="dtd", source_text=dtd_text)
    assert store.schema_format(fingerprint) == "dtd"
    assert store.schema_source_text(fingerprint) == dtd_text


def test_engine_save_store_carries_load_schema_provenance(tmp_path,
                                                          school):
    """Schemas that entered the engine as text keep (format, text)
    through save_store; schemas compiled from objects default to dtd."""
    from repro.dtd.serialize import dtd_to_compact

    engine = Engine()
    text = dtd_to_compact(school.classes)
    engine.compile_schema(text, format="compact")
    engine.compile_schema(school.students)  # object path: no provenance
    saved = engine.save_store(tmp_path / "prov")
    classes_fp = school.classes.fingerprint()
    students_fp = school.students.fingerprint()
    assert saved.schema_format(classes_fp) == "compact"
    assert saved.schema_source_text(classes_fp) == text
    assert saved.schema_format(students_fp) == "dtd"
    assert saved.schema_source_text(students_fp) is None


def test_embedding_store_roundtrip(store, school):
    sigma = school.sigma1
    fingerprint = store.put_embedding(sigma, validated=True)
    reloaded = ArtifactStore(store.root, create=False)
    rebuilt = reloaded.get_embedding(fingerprint)
    assert rebuilt.fingerprint() == sigma.fingerprint()
    assert rebuilt.lam == sigma.lam
    assert rebuilt.paths == sigma.paths
    assert reloaded.embedding_validated(fingerprint)
    # The schemas came along automatically.
    assert len(reloaded.schema_fingerprints()) == 2


def test_missing_and_alien_stores_fail_loudly(tmp_path):
    with pytest.raises(StoreError):
        ArtifactStore(tmp_path / "nowhere", create=False)
    alien = tmp_path / "alien"
    alien.mkdir()
    (alien / "manifest.json").write_text(json.dumps({"format": "other"}))
    with pytest.raises(StoreError):
        ArtifactStore(alien)


def test_corrupt_artifact_detected(store, school):
    fingerprint = store.put_schema(school.classes)
    path = store.root / "schemas" / f"{fingerprint}.json"
    payload = json.loads(path.read_text())
    payload["types"][1][0] += "_tampered"
    payload["types"][1][1] = {"kind": "str"}
    path.write_text(json.dumps(payload))
    fresh = ArtifactStore(store.root, create=False)
    with pytest.raises(StoreError):
        fresh.get_schema(fingerprint)


# -- Engine.save_store / warm_start ------------------------------------------

def _documents(source, count=4):
    return [InstanceGenerator(source, seed=seed, max_depth=8,
                              star_mean=1.5).generate()
            for seed in range(count)]


def test_warm_start_serves_with_zero_compile_misses(tmp_path, school):
    sigma = school.sigma1
    documents = _documents(school.classes)
    engine = Engine()
    baseline = [engine.apply_embedding(sigma, d) for d in documents]
    engine.save_store(tmp_path / "store")

    warm = Engine.warm_start(tmp_path / "store")
    served = [warm.apply_embedding(sigma, d) for d in documents]
    for fresh, again in zip(baseline, served):
        assert tree_equal(fresh.tree, again.tree)
    assert warm.schema_stats.misses == 0
    assert warm.embedding_stats.misses == 0
    assert warm.embedding_stats.hits == len(documents)
    # Results also match a plain uncached InstMap run.
    for document, again in zip(documents, served):
        assert tree_equal(InstMap(sigma).apply(document).tree, again.tree)


def test_warm_start_preserves_validated_flag(tmp_path):
    source = load_schema("a -> b\nb -> str")
    target = load_schema("x -> y\ny -> str", name="t")
    sigma = build_embedding(source, target, {"a": "x", "b": "y"},
                            {("a", "b"): "y", ("b", "str"): "text()"})
    engine = Engine()
    engine.compile_embedding(sigma, ensure_valid=True)
    engine.save_store(tmp_path / "store")
    warm = Engine.warm_start(tmp_path / "store")
    assert warm.compile_embedding(sigma).validated
    assert warm.embedding_stats.hits == 1


def test_warm_start_serves_stored_search_results(tmp_path, school):
    engine = Engine()
    result = engine.find_embedding(school.classes, school.school, school.att)
    assert result.found
    engine.save_store(tmp_path / "store")

    warm = Engine.warm_start(tmp_path / "store")
    again = warm.find_embedding(school.classes, school.school, school.att)
    assert warm.search_stats.hits == 1 and warm.search_stats.misses == 0
    assert again.found and again.embedding is not None
    assert again.embedding.fingerprint() == result.embedding.fingerprint()
    assert again.method == result.method


def test_save_store_is_reloadable_and_inspectable(tmp_path, school):
    engine = Engine()
    engine.find_embedding(school.classes, school.school, school.att)
    store = engine.save_store(tmp_path / "store")
    summary = store.describe()
    assert len(summary["schemas"]) == 2
    assert len(summary["embeddings"]) == 1
    assert len(summary["searches"]) == 1
    # save_store into the same directory again is idempotent.
    engine.save_store(tmp_path / "store")
    assert ArtifactStore(tmp_path / "store",
                         create=False).describe() == summary


def test_corrupt_manifest_and_artifact_json_raise_store_error(tmp_path,
                                                              school):
    store = ArtifactStore(tmp_path / "store")
    fingerprint = store.put_embedding(school.sigma1)
    (tmp_path / "store" / "manifest.json").write_text("{truncated")
    with pytest.raises(StoreError):
        ArtifactStore(tmp_path / "store", create=False)
    # Repair the manifest, truncate an artifact body instead.
    store._flush_manifest()
    (tmp_path / "store" / "embeddings" / f"{fingerprint}.json").write_text(
        "{truncated")
    fresh = ArtifactStore(tmp_path / "store", create=False)
    with pytest.raises(StoreError):
        fresh.get_embedding(fingerprint)


def test_concurrent_manifest_additions_merge(tmp_path, school):
    """Two store handles adding different artifacts must not lose each
    other's manifest entries (merge-on-flush)."""
    first = ArtifactStore(tmp_path / "store")
    second = ArtifactStore(tmp_path / "store")
    fp_classes = first.put_schema(school.classes)
    fp_school = second.put_schema(school.school)
    merged = ArtifactStore(tmp_path / "store", create=False)
    assert set(merged.schema_fingerprints()) == {fp_classes, fp_school}
    assert merged.get_schema(fp_classes).fingerprint() == fp_classes
    assert merged.get_schema(fp_school).fingerprint() == fp_school


def test_warm_start_grows_caches_to_fit_store(tmp_path):
    """A store larger than the default LRU bounds must not evict during
    warm start (that would silently void the zero-miss guarantee)."""
    from repro.dtd.model import make_dtd

    engine = Engine()
    schemas = [make_dtd("r", r="x*", x="str", **{f"t{i}": "str"})
               for i in range(70)]  # > default schema_cache of 64
    for schema in schemas:
        engine.compile_schema(schema)
    engine.save_store(tmp_path / "store")
    # The engine's own LRU held only 64; the store holds what survived.
    warm = Engine.warm_start(tmp_path / "store")
    stored = ArtifactStore(tmp_path / "store",
                           create=False).schema_fingerprints()
    assert len(stored) == 64
    for schema in schemas[6:]:  # the 64 survivors, oldest first
        warm.compile_schema(schema)
    assert warm.schema_stats.misses == 0
    assert warm.schema_stats.evictions == 0


# -- generated codecs ---------------------------------------------------------

_CODEC_XML = ("<db><class><cno>1</cno><title>t</title>"
              "<type><project>p</project></type></class></db>")


def test_save_store_persists_codec_and_warm_start_attaches(tmp_path,
                                                           school):
    engine = Engine()
    compiled = engine.compile_embedding(school.sigma1, ensure_valid=True)
    expected = compiled.map_text(_CODEC_XML)
    fingerprint = compiled.fingerprint
    store = engine.save_store(tmp_path / "store")

    assert store.codec_fingerprints() == [fingerprint]
    source = store.get_codec_source(fingerprint)
    assert "# lint: codec-plane" in source
    row, = store.describe()["codecs"]
    assert row["embedding"] == fingerprint
    assert row["source"] == school.classes.fingerprint()
    assert row["target"] == school.school.fingerprint()
    assert row["provenance"] == "engine-save"

    warm = Engine.warm_start(tmp_path / "store")
    again = warm.compile_embedding(school.sigma1)
    # The codec was attached from stored source at warm start — the
    # slot is already populated, no generation happened lazily.
    assert again._codec not in (None, False)
    assert again.map_text(_CODEC_XML) == expected


def test_precodec_store_reads_cleanly_without_rewrite(tmp_path, school):
    """A store written before the codec plane existed (no ``codecs``
    manifest section, no ``codecs/`` directory) loads, inspects and
    warm-starts — and reading it back must not rewrite its files."""
    import shutil

    engine = Engine()
    engine.compile_embedding(school.sigma1, ensure_valid=True)
    path = tmp_path / "store"
    engine.save_store(path)
    manifest = json.loads((path / "manifest.json").read_text())
    manifest.pop("codecs")
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2,
                                                   sort_keys=True))
    shutil.rmtree(path / "codecs")
    before = (path / "manifest.json").read_text()

    store = ArtifactStore(path, create=False)
    assert store.codec_fingerprints() == []
    assert store.describe()["codecs"] == []
    warm = Engine.warm_start(path)
    compiled = warm.compile_embedding(school.sigma1)
    assert compiled._codec is None  # nothing attached from the store
    assert compiled.codec is not None  # lazy generation still works
    assert (path / "manifest.json").read_text() == before
    assert not (path / "codecs").exists()
