"""Partial information preservation (Section 7 extension)."""

import pytest

from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.core.partial import project_dtd
from repro.core.similarity import SimilarityMatrix
from repro.core.translate import Translator
from repro.anfa.evaluate import evaluate_anfa_set
from repro.dtd.generate import random_instance
from repro.dtd.model import Concat, Disjunction, Empty, SchemaError
from repro.dtd.validate import validate
from repro.matching.search import find_embedding
from repro.xpath.evaluator import evaluate_set
from repro.xpath.parser import parse_xr
from repro.xtree.nodes import tree_equal
from repro.xtree.parser import parse_xml


def test_project_concat_drops_children(school):
    projection = project_dtd(school.classes, ["title"])
    assert projection.projected.production("class") == \
        Concat(("cno", "type"))
    assert "title" in projection.dropped


def test_project_closure_drops_orphans(school):
    # Dropping 'type' orphans regular/project/prereq (prereq is only
    # reachable through regular) — all are dropped transitively.
    projection = project_dtd(school.classes, ["type"])
    assert {"type", "regular", "project", "prereq"} <= projection.dropped
    assert set(projection.projected.types) == {"db", "class", "cno",
                                               "title"}


def test_project_disjunction_becomes_optional(school):
    projection = project_dtd(school.classes, ["project"])
    production = projection.projected.production("type")
    assert isinstance(production, Disjunction)
    assert production.children == ("regular",)
    assert production.optional


def test_project_star_child_empties():
    from repro.schema import load_schema

    dtd = load_schema("r -> x, k\nx -> y*\ny -> str\nk -> str")
    projection = project_dtd(dtd, ["y"])
    assert isinstance(projection.projected.production("x"), Empty)


def test_project_rejects_root_and_unknown(school):
    with pytest.raises(SchemaError):
        project_dtd(school.classes, ["db"])
    with pytest.raises(SchemaError):
        project_dtd(school.classes, ["ghost"])


def test_projected_instances_conform(school):
    projection = project_dtd(school.classes, ["title", "project"])
    for seed in range(5):
        instance = random_instance(school.classes, seed=seed, max_depth=8)
        projected = projection.project_instance(instance)
        validate(projected, projection.projected)


def test_partial_preservation_end_to_end(school):
    """Embed the projection into the school target: the kept part is
    information preserving; the dropped part is gone by construction."""
    projection = project_dtd(school.classes, ["title"])
    att = SimilarityMatrix.permissive()
    result = find_embedding(projection.projected, school.school, att,
                            seed=3)
    assert result.found
    sigma = result.embedding

    instance = parse_xml(
        "<db><class><cno>CS331</cno><title>secret</title>"
        "<type><project>p</project></type></class></db>")
    projected = projection.project_instance(instance)
    mapped = InstMap(sigma).apply(projected)
    validate(mapped.tree, school.school)

    # Inverse recovers exactly the projection (not the original).
    recovered = invert(sigma, mapped.tree)
    assert tree_equal(recovered, projected)
    assert not tree_equal(recovered, instance)

    # Queries over kept types are preserved.
    translator = Translator(sigma)
    for source in ["class/cno/text()", "class[cno/text()='CS331']",
                   "class/type/project/text()"]:
        query = parse_xr(source)
        expected = evaluate_set(query, projected)
        anfa = translator.translate(query)
        answered = evaluate_anfa_set(anfa, mapped.tree).map_ids(mapped.idM)
        assert answered.strings == expected.strings
        assert answered.ids == expected.ids

    # Queries over the dropped type answer empty on the projection.
    title_query = parse_xr("class/title/text()")
    assert evaluate_set(title_query, instance).strings == \
        frozenset({"secret"})
    assert evaluate_set(title_query, projected).strings == frozenset()


def test_projection_identity_when_nothing_dropped(school):
    projection = project_dtd(school.classes, [])
    assert projection.dropped == frozenset()
    instance = random_instance(school.classes, seed=1, max_depth=7)
    assert tree_equal(projection.project_instance(instance), instance)
