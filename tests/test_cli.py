"""CLI round-trip tests: embed → map → translate → invert via files."""

import json

import pytest

from repro.cli import embedding_from_json, embedding_to_json, main
from repro.workloads.library import school_example
from repro.dtd.serialize import dtd_to_text
from repro.xtree.nodes import tree_equal
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string


@pytest.fixture()
def files(tmp_path, school):
    source_path = tmp_path / "classes.dtd"
    source_path.write_text(dtd_to_text(school.classes))
    target_path = tmp_path / "school.dtd"
    target_path.write_text(dtd_to_text(school.school))
    doc_path = tmp_path / "doc.xml"
    doc_path.write_text(
        "<db><class><cno>CS331</cno><title>DB</title>"
        "<type><project>p1</project></type></class></db>")
    return tmp_path, source_path, target_path, doc_path


@pytest.fixture()
def school(request):
    return school_example()


def test_embedding_json_roundtrip(school):
    text = embedding_to_json(school.sigma1)
    rebuilt = embedding_from_json(text, school.classes, school.school)
    assert rebuilt.lam == school.sigma1.lam
    assert rebuilt.paths == school.sigma1.paths
    rebuilt.check()


def test_cli_embed_map_invert(files, capsys):
    tmp_path, source_path, target_path, doc_path = files
    embedding_path = tmp_path / "sigma.json"
    code = main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"])
    assert code == 0
    assert json.loads(embedding_path.read_text())["lam"]

    code = main(["map", str(source_path), str(target_path),
                 str(embedding_path), str(doc_path)])
    assert code == 0
    mapped_text = capsys.readouterr().out
    mapped_path = tmp_path / "mapped.xml"
    mapped_path.write_text(mapped_text)

    code = main(["invert", str(source_path), str(target_path),
                 str(embedding_path), str(mapped_path)])
    assert code == 0
    recovered = parse_xml(capsys.readouterr().out)
    assert tree_equal(recovered, parse_xml(doc_path.read_text()))


def test_cli_translate(files, capsys):
    tmp_path, source_path, target_path, doc_path = files
    embedding_path = tmp_path / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    code = main(["translate", str(source_path), str(target_path),
                 str(embedding_path), "class/cno/text()"])
    assert code == 0
    output = capsys.readouterr().out
    assert "ANFA" in output and "-->" in output


def test_cli_xslt(files, capsys):
    tmp_path, source_path, target_path, doc_path = files
    embedding_path = tmp_path / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    assert main(["xslt", str(source_path), str(target_path),
                 str(embedding_path)]) == 0
    assert "<xsl:stylesheet" in capsys.readouterr().out
    assert main(["xslt", str(source_path), str(target_path),
                 str(embedding_path), "--inverse"]) == 0
    assert "xsl:apply-templates" in capsys.readouterr().out


def test_cli_validate(files, capsys):
    _tmp, source_path, _target, doc_path = files
    assert main(["validate", str(source_path), str(doc_path)]) == 0
    assert "valid" in capsys.readouterr().out


def test_cli_validate_rejects(files, tmp_path, capsys):
    _tmp, source_path, _target, _doc = files
    bad = tmp_path / "bad.xml"
    bad.write_text("<db><wrong/></db>")
    assert main(["validate", str(source_path), str(bad)]) == 1


def test_cli_embed_failure_exit_code(tmp_path):
    source = tmp_path / "s.dtd"
    source.write_text("<!ELEMENT a (b*)><!ELEMENT b (#PCDATA)>")
    target = tmp_path / "t.dtd"
    target.write_text("<!ELEMENT x (y)><!ELEMENT y (#PCDATA)>")
    assert main(["embed", str(source), str(target)]) == 1


def test_cli_batch_map(files, tmp_path, capsys):
    tmp, source_path, target_path, doc_path = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    second = tmp / "doc2.xml"
    second.write_text(
        "<db><class><cno>CS351</cno><title>OS</title>"
        "<type><project>p2</project></type></class></db>")
    # A same-named document in another directory must not overwrite.
    subdir = tmp_path / "other"
    subdir.mkdir()
    clash = subdir / "doc.xml"
    clash.write_text(second.read_text())
    out_dir = tmp_path / "mapped"
    code = main(["batch", "map", str(source_path), str(target_path),
                 str(embedding_path), str(doc_path), str(second),
                 str(clash), "--out-dir", str(out_dir), "--stats"])
    assert code == 0
    written = sorted(p.name for p in out_dir.iterdir())
    assert written == ["doc-2.mapped.xml", "doc.mapped.xml",
                       "doc2.mapped.xml"]
    err = capsys.readouterr().err
    assert "embeddings: " in err  # --stats cache counters
    # Round-trip each mapped file through invert.
    for original, mapped_name in [(doc_path, "doc.mapped.xml"),
                                  (second, "doc2.mapped.xml")]:
        assert main(["invert", str(source_path), str(target_path),
                     str(embedding_path), str(out_dir / mapped_name)]) == 0
        recovered = parse_xml(capsys.readouterr().out)
        assert tree_equal(recovered, parse_xml(original.read_text()))


def test_cli_batch_translate(files, capsys):
    tmp, source_path, target_path, _doc = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    code = main(["batch", "translate", str(source_path), str(target_path),
                 str(embedding_path), "class/cno/text()", "class/cno/text()",
                 "class", "--stats"])
    assert code == 0
    captured = capsys.readouterr()
    assert captured.out.count("ANFA") == 3
    # The repeated query is a translation-cache hit.
    assert "translations: 1 hits, 2 misses" in captured.err


def test_cli_att_file(files, tmp_path):
    _tmp, source_path, target_path, _doc = files
    att_path = tmp_path / "att.json"
    # An att that blocks everything except an identity-ish core — the
    # search must fail because most types have no candidates.
    att_path.write_text(json.dumps([
        {"source": "db", "target": "school", "score": 1.0}]))
    assert main(["embed", str(source_path), str(target_path),
                 "--att", str(att_path)]) == 1
