"""CLI round-trip tests: embed → map → translate → invert via files."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import embedding_from_json, embedding_to_json, main
from repro.workloads.library import school_example
from repro.dtd.serialize import dtd_to_text
from repro.xtree.nodes import tree_equal
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string


@pytest.fixture()
def files(tmp_path, school):
    source_path = tmp_path / "classes.dtd"
    source_path.write_text(dtd_to_text(school.classes))
    target_path = tmp_path / "school.dtd"
    target_path.write_text(dtd_to_text(school.school))
    doc_path = tmp_path / "doc.xml"
    doc_path.write_text(
        "<db><class><cno>CS331</cno><title>DB</title>"
        "<type><project>p1</project></type></class></db>")
    return tmp_path, source_path, target_path, doc_path


@pytest.fixture()
def school(request):
    return school_example()


def test_embedding_json_roundtrip(school):
    text = embedding_to_json(school.sigma1)
    rebuilt = embedding_from_json(text, school.classes, school.school)
    assert rebuilt.lam == school.sigma1.lam
    assert rebuilt.paths == school.sigma1.paths
    rebuilt.check()


def test_cli_embed_map_invert(files, capsys):
    tmp_path, source_path, target_path, doc_path = files
    embedding_path = tmp_path / "sigma.json"
    code = main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"])
    assert code == 0
    assert json.loads(embedding_path.read_text())["lam"]

    code = main(["map", str(source_path), str(target_path),
                 str(embedding_path), str(doc_path)])
    assert code == 0
    mapped_text = capsys.readouterr().out
    mapped_path = tmp_path / "mapped.xml"
    mapped_path.write_text(mapped_text)

    code = main(["invert", str(source_path), str(target_path),
                 str(embedding_path), str(mapped_path)])
    assert code == 0
    recovered = parse_xml(capsys.readouterr().out)
    assert tree_equal(recovered, parse_xml(doc_path.read_text()))


def test_cli_translate(files, capsys):
    tmp_path, source_path, target_path, doc_path = files
    embedding_path = tmp_path / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    code = main(["translate", str(source_path), str(target_path),
                 str(embedding_path), "class/cno/text()"])
    assert code == 0
    output = capsys.readouterr().out
    assert "ANFA" in output and "-->" in output


def test_cli_xslt(files, capsys):
    tmp_path, source_path, target_path, doc_path = files
    embedding_path = tmp_path / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    assert main(["xslt", str(source_path), str(target_path),
                 str(embedding_path)]) == 0
    assert "<xsl:stylesheet" in capsys.readouterr().out
    assert main(["xslt", str(source_path), str(target_path),
                 str(embedding_path), "--inverse"]) == 0
    assert "xsl:apply-templates" in capsys.readouterr().out


def test_cli_validate(files, capsys):
    _tmp, source_path, _target, doc_path = files
    assert main(["validate", str(source_path), str(doc_path)]) == 0
    assert "valid" in capsys.readouterr().out


def test_cli_validate_rejects(files, tmp_path, capsys):
    _tmp, source_path, _target, _doc = files
    bad = tmp_path / "bad.xml"
    bad.write_text("<db><wrong/></db>")
    assert main(["validate", str(source_path), str(bad)]) == 1


def test_cli_embed_failure_exit_code(tmp_path):
    source = tmp_path / "s.dtd"
    source.write_text("<!ELEMENT a (b*)><!ELEMENT b (#PCDATA)>")
    target = tmp_path / "t.dtd"
    target.write_text("<!ELEMENT x (y)><!ELEMENT y (#PCDATA)>")
    assert main(["embed", str(source), str(target)]) == 1


def test_cli_batch_map(files, tmp_path, capsys):
    tmp, source_path, target_path, doc_path = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    second = tmp / "doc2.xml"
    second.write_text(
        "<db><class><cno>CS351</cno><title>OS</title>"
        "<type><project>p2</project></type></class></db>")
    # A same-named document in another directory must not overwrite.
    subdir = tmp_path / "other"
    subdir.mkdir()
    clash = subdir / "doc.xml"
    clash.write_text(second.read_text())
    out_dir = tmp_path / "mapped"
    code = main(["batch", "map", str(source_path), str(target_path),
                 str(embedding_path), str(doc_path), str(second),
                 str(clash), "--out-dir", str(out_dir), "--stats"])
    assert code == 0
    written = sorted(p.name for p in out_dir.iterdir())
    assert written == ["doc-2.mapped.xml", "doc.mapped.xml",
                       "doc2.mapped.xml"]
    err = capsys.readouterr().err
    assert "embeddings: " in err  # --stats cache counters
    # Round-trip each mapped file through invert.
    for original, mapped_name in [(doc_path, "doc.mapped.xml"),
                                  (second, "doc2.mapped.xml")]:
        assert main(["invert", str(source_path), str(target_path),
                     str(embedding_path), str(out_dir / mapped_name)]) == 0
        recovered = parse_xml(capsys.readouterr().out)
        assert tree_equal(recovered, parse_xml(original.read_text()))


def test_cli_batch_translate(files, capsys):
    tmp, source_path, target_path, _doc = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    code = main(["batch", "translate", str(source_path), str(target_path),
                 str(embedding_path), "class/cno/text()", "class/cno/text()",
                 "class", "--stats"])
    assert code == 0
    captured = capsys.readouterr()
    assert captured.out.count("ANFA") == 3
    # The repeated query is a translation-cache hit.
    assert "translations: 1 hits, 2 misses" in captured.err


def test_cli_att_file(files, tmp_path):
    _tmp, source_path, target_path, _doc = files
    att_path = tmp_path / "att.json"
    # An att that blocks everything except an identity-ish core — the
    # search must fail because most types have no candidates.
    att_path.write_text(json.dumps([
        {"source": "db", "target": "school", "score": 1.0}]))
    assert main(["embed", str(source_path), str(target_path),
                 "--att", str(att_path)]) == 1


def test_cli_batch_map_jobs_byte_identical(files, tmp_path, capsys):
    """--jobs 2 --store writes byte-identical files to --jobs 1."""
    tmp, source_path, target_path, doc_path = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    for index in range(6):
        (corpus / f"d{index}.xml").write_text(
            f"<db><class><cno>CS{index}</cno><title>T{index}</title>"
            "<type><project>p</project></type></class></db>")
    store = tmp_path / "store"
    out_serial = tmp_path / "out1"
    out_parallel = tmp_path / "out2"
    assert main(["batch", "map", str(source_path), str(target_path),
                 str(embedding_path), str(corpus), "--jobs", "1",
                 "--store", str(store), "--out-dir", str(out_serial),
                 "--stats"]) == 0
    err = capsys.readouterr().err
    # Warm-started from the store: zero compile misses while serving.
    assert "embeddings: 6 hits, 0 misses" in err
    assert main(["batch", "map", str(source_path), str(target_path),
                 str(embedding_path), str(corpus), "--jobs", "2",
                 "--store", str(store), "--out-dir", str(out_parallel)]) == 0
    capsys.readouterr()
    serial_files = sorted(p.name for p in out_serial.iterdir())
    parallel_files = sorted(p.name for p in out_parallel.iterdir())
    assert serial_files == parallel_files == \
        [f"d{i}.mapped.xml" for i in range(6)]
    for name in serial_files:
        assert (out_serial / name).read_bytes() == \
            (out_parallel / name).read_bytes()


def test_cli_batch_map_ndjson_corpus_and_failures(files, tmp_path, capsys):
    tmp, source_path, target_path, _doc = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    corpus = tmp_path / "corpus.ndjson"
    corpus.write_text(
        json.dumps({"name": "good.xml",
                    "xml": "<db><class><cno>CS1</cno><title>T</title>"
                           "<type><project>p</project></type>"
                           "</class></db>"}) + "\n"
        + json.dumps({"name": "bad.xml", "xml": "<1abc></1abc>"}) + "\n")
    code = main(["batch", "map", str(source_path), str(target_path),
                 str(embedding_path), str(corpus)])
    assert code == 1  # the bad document fails the batch exit code
    captured = capsys.readouterr()
    assert "# good.xml" in captured.err
    assert "bad.xml: FAILED: XMLParseError" in captured.err
    assert "<school>" in captured.out


def test_cli_store_build_and_inspect(files, tmp_path, capsys):
    tmp, source_path, target_path, _doc = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    store = tmp_path / "store"
    assert main(["store", "build", str(store), str(source_path),
                 str(target_path), str(embedding_path)]) == 0
    capsys.readouterr()
    assert main(["store", "inspect", str(store)]) == 0
    text = capsys.readouterr().out
    assert "schema" in text and "embedding" in text and "validated=True" in text
    assert main(["store", "inspect", str(store), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert len(summary["schemas"]) == 2
    assert len(summary["embeddings"]) == 1


def test_cli_store_pack(files, tmp_path, capsys):
    from repro.engine import current_generation, open_view

    tmp, source_path, target_path, _doc = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    store = tmp_path / "store"
    assert main(["store", "build", str(store), str(source_path),
                 str(target_path), str(embedding_path)]) == 0
    capsys.readouterr()
    assert main(["store", "pack", str(store)]) == 0
    out = capsys.readouterr().out
    assert "generation 1" in out and "pack-00000001.bin" in out
    assert current_generation(store) == 1
    with open_view(store) as view:
        assert len(view.embedding_fingerprints()) == 1
        assert view.json_parses == 0
    # Repacking publishes the next generation (the hot-reload step).
    assert main(["store", "pack", str(store)]) == 0
    assert current_generation(store) == 2
    # Packing a store that doesn't exist exits 2 with one clean line.
    assert main(["store", "pack", str(tmp_path / "missing")]) == 2


def test_cli_batch_translate_jobs(files, capsys, tmp_path):
    tmp, source_path, target_path, _doc = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    store = tmp_path / "store"
    code = main(["batch", "translate", str(source_path), str(target_path),
                 str(embedding_path), "class/cno/text()", "class[",
                 "class", "--jobs", "2", "--store", str(store), "--stats"])
    assert code == 1  # the malformed query fails the exit code
    captured = capsys.readouterr()
    assert captured.out.count("ANFA") == 2
    assert "class[: FAILED" in captured.err


def _error_line(capsys) -> str:
    """The CLI's single stderr error line (and assert it is alone)."""
    err = capsys.readouterr().err.strip()
    assert err.startswith("repro: error: "), err
    assert "Traceback" not in err
    assert len(err.splitlines()) == 1, err
    return err


def test_cli_malformed_embedding_json_is_clean_error(files, capsys):
    tmp, source_path, target_path, doc_path = files
    bad = tmp / "bad.json"
    bad.write_text("{not json at all")
    code = main(["map", str(source_path), str(target_path), str(bad),
                 str(doc_path)])
    assert code == 2
    assert "bad.json" in _error_line(capsys)


def test_cli_embedding_json_missing_keys_is_clean_error(files, capsys):
    tmp, source_path, target_path, doc_path = files
    bad = tmp / "shape.json"
    bad.write_text(json.dumps({"lam": {}, "paths": [{"source": "db"}]}))
    code = main(["batch", "map", str(source_path), str(target_path),
                 str(bad), str(doc_path)])
    assert code == 2
    err = _error_line(capsys)
    assert "shape.json" in err and "paths[0]" in err


def test_cli_missing_input_file_is_clean_error(files, capsys):
    _tmp, source_path, target_path, _doc = files
    code = main(["batch", "translate", str(source_path), str(target_path),
                 "/nonexistent/sigma.json", "class"])
    assert code == 2
    assert "sigma.json" in _error_line(capsys)


def test_cli_malformed_dtd_is_clean_error(files, tmp_path, capsys):
    _tmp, source_path, _target, _doc = files
    bad = tmp_path / "broken.dtd"
    bad.write_text("<!ELEMENT a (unclosed")
    code = main(["validate", str(bad), str(bad)])
    assert code == 2
    assert "broken.dtd" in _error_line(capsys)


def test_cli_store_inspect_corrupt_manifest_is_clean_error(tmp_path,
                                                           capsys):
    store = tmp_path / "store"
    store.mkdir()
    (store / "manifest.json").write_text("{torn write")
    code = main(["store", "inspect", str(store)])
    assert code == 2
    assert "corrupt" in _error_line(capsys)


def test_cli_store_build_malformed_embedding_is_clean_error(files,
                                                            tmp_path,
                                                            capsys):
    tmp, source_path, target_path, _doc = files
    bad = tmp / "bad.json"
    bad.write_text(json.dumps(["not", "an", "object"]))
    code = main(["store", "build", str(tmp_path / "store"),
                 str(source_path), str(target_path), str(bad)])
    assert code == 2
    assert "bad.json" in _error_line(capsys)


def test_cli_bad_att_file_is_clean_error(files, tmp_path, capsys):
    _tmp, source_path, target_path, _doc = files
    att = tmp_path / "att.json"
    att.write_text(json.dumps({"source": "db"}))
    code = main(["embed", str(source_path), str(target_path),
                 "--att", str(att)])
    assert code == 2
    assert "att.json" in _error_line(capsys)


def test_cli_non_numeric_att_score_is_clean_error(files, tmp_path,
                                                  capsys):
    _tmp, source_path, target_path, _doc = files
    att = tmp_path / "att.json"
    att.write_text(json.dumps([
        {"source": "db", "target": "school", "score": "high"}]))
    code = main(["embed", str(source_path), str(target_path),
                 "--att", str(att)])
    assert code == 2
    err = _error_line(capsys)
    assert "att.json" in err and "score" in err


def test_cli_serve_missing_store_is_clean_error(tmp_path, capsys):
    code = main(["serve", str(tmp_path / "nowhere")])
    assert code == 2
    assert "nowhere" in _error_line(capsys)


def test_cli_no_traceback_in_subprocess(files, tmp_path):
    """End to end through the real interpreter: exit 2, one line, no
    traceback — what a shell user actually sees."""
    _tmp, source_path, target_path, _doc = files
    bad = tmp_path / "bad.json"
    bad.write_text("][")
    env = dict(os.environ, PYTHONPATH="src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "map", str(source_path),
         str(target_path), str(bad), str(bad)],
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    assert result.returncode == 2
    assert result.stderr.startswith("repro: error: ")
    assert "Traceback" not in result.stderr


def test_cli_malformed_xsd_is_clean_error(files, tmp_path, capsys):
    """A truncated XSD document: exit 2, one path-prefixed line."""
    _tmp, source_path, _target, _doc = files
    bad = tmp_path / "broken.xsd"
    bad.write_text('<xs:schema xmlns:xs="http://www.w3.org/2001/'
                   'XMLSchema"><xs:element name="a">')
    code = main(["validate", str(bad), str(bad)])
    assert code == 2
    err = _error_line(capsys)
    assert "broken.xsd" in err and "not well-formed" in err


def test_cli_unsupported_xsd_construct_is_clean_error(tmp_path, capsys):
    bad = tmp_path / "fancy.xsd"
    bad.write_text('<xs:schema xmlns:xs="http://www.w3.org/2001/'
                   'XMLSchema"><xs:element name="a"><xs:complexType>'
                   '<xs:all><xs:element ref="b"/></xs:all>'
                   '</xs:complexType></xs:element>'
                   '<xs:element name="b" type="xs:string"/></xs:schema>')
    code = main(["validate", str(bad), str(bad)])
    assert code == 2
    err = _error_line(capsys)
    assert "fancy.xsd" in err and "xs:all" in err


def test_cli_undetectable_format_is_clean_error(files, tmp_path, capsys):
    _tmp, _source, target_path, _doc = files
    mystery = tmp_path / "mystery.schema"
    mystery.write_text("this is neither markup nor productions\n")
    code = main(["embed", str(mystery), str(target_path)])
    assert code == 2
    err = _error_line(capsys)
    assert "mystery.schema" in err and "cannot detect" in err


def test_cli_wrong_explicit_format_is_clean_error(files, capsys):
    """--format xsd against DTD text fails loudly, not by sniffing."""
    _tmp, source_path, target_path, _doc = files
    code = main(["embed", "--format", "xsd", str(source_path),
                 str(target_path)])
    assert code == 2
    err = _error_line(capsys)
    assert str(source_path.name) in err


def test_cli_xsd_workflow_matches_dtd(files, tmp_path, capsys):
    """The same grammar as .xsd files: embed finds the identical
    embedding JSON, and the store records format + provenance."""
    from repro.schema import dtd_to_xsd, load_schema

    tmp, source_path, target_path, _doc = files
    source_xsd = tmp_path / "classes.xsd"
    source_xsd.write_text(dtd_to_xsd(load_schema(
        source_path.read_text())))
    target_xsd = tmp_path / "school.xsd"
    target_xsd.write_text(dtd_to_xsd(load_schema(
        target_path.read_text())))

    sigma_dtd = tmp / "sigma-dtd.json"
    sigma_xsd = tmp_path / "sigma-xsd.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(sigma_dtd), "--seed", "1"]) == 0
    assert main(["embed", "--format", "xsd", str(source_xsd),
                 str(target_xsd), "--out", str(sigma_xsd),
                 "--seed", "1"]) == 0
    assert sigma_dtd.read_text() == sigma_xsd.read_text()

    store = tmp_path / "store"
    assert main(["store", "build", str(store), str(source_xsd),
                 str(target_xsd), str(sigma_xsd)]) == 0
    capsys.readouterr()
    assert main(["store", "inspect", str(store)]) == 0
    text = capsys.readouterr().out
    assert "format=xsd" in text and "source=sources/" in text
    assert main(["store", "inspect", str(store), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert {row["format"] for row in summary["schemas"]} == {"xsd"}
    assert all(row["source"] for row in summary["schemas"])


def test_cli_store_inspect_legacy_store_reads_as_dtd(files, tmp_path,
                                                     capsys):
    """Stores written before the frontend layer inspect as format=dtd."""
    tmp, source_path, target_path, _doc = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    store = tmp_path / "store"
    assert main(["store", "build", str(store), str(source_path),
                 str(target_path), str(embedding_path)]) == 0
    manifest_path = store / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    for entry in manifest["schemas"].values():
        entry.pop("format", None)
        entry.pop("source", None)
    manifest_path.write_text(json.dumps(manifest))
    capsys.readouterr()
    assert main(["store", "inspect", str(store)]) == 0
    text = capsys.readouterr().out
    assert "format=dtd" in text and "source=none" in text


def test_cli_batch_map_isolates_corpus_level_failures(files, tmp_path,
                                                      capsys):
    """A missing corpus path is reported and the rest keeps serving."""
    tmp, source_path, target_path, doc_path = files
    embedding_path = tmp / "sigma.json"
    assert main(["embed", str(source_path), str(target_path),
                 "--out", str(embedding_path), "--seed", "1"]) == 0
    missing = tmp_path / "nowhere.xml"
    code = main(["batch", "map", str(source_path), str(target_path),
                 str(embedding_path), str(missing), str(doc_path)])
    assert code == 1
    captured = capsys.readouterr()
    assert "nowhere.xml: FAILED" in captured.err
    assert "# doc.xml" in captured.err  # the good document still served
    assert "<school>" in captured.out
