"""E8: Fig. 7 — naive edge substitution mis-translates; Tr does not."""

import pytest

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.embedding import build_embedding
from repro.core.instmap import InstMap
from repro.core.naive import naive_translate
from repro.core.translate import translate_query
from repro.schema import load_schema
from repro.xpath.evaluator import evaluate_set
from repro.xpath.parser import parse_xr
from repro.xtree.parser import parse_xml


@pytest.fixture(scope="module")
def fig7():
    """Source: B has no C child; target: B requires a C child.

    λ is the identity and every path is the single edge — the Fig. 7
    setup where "simply substituting path(Y,X) for (Y,X)" looks like it
    should work.
    """
    source = load_schema("""
        r -> A, B
        A -> C
        B -> eps
        C -> eps
    """, name="fig7-src")
    target = load_schema("""
        r -> A, B
        A -> C
        B -> C
        C -> eps
    """, name="fig7-tgt")
    embedding = build_embedding(
        source, target,
        lam={"r": "r", "A": "A", "B": "B", "C": "C"},
        paths={("r", "A"): "A", ("r", "B"): "B", ("A", "C"): "C"})
    embedding.check()
    return embedding


def test_naive_translation_returns_padded_node(fig7):
    """The padded C child of B is wrongly returned by the naive
    translation of (A ∪ B ∪ C)*."""
    instance = parse_xml("<r><A><C/></A><B/></r>")
    mapped = InstMap(fig7).apply(instance)
    query = parse_xr("(A | B | C)*")

    source_result = evaluate_set(query, instance)
    naive_query = naive_translate(fig7, query)
    naive_result = evaluate_set(naive_query, mapped.tree)

    # The naive result has MORE nodes than the source: the mindef C
    # child under the image of B.
    assert len(naive_result.ids) == len(source_result.ids) + 1
    padded = [i for i in naive_result.ids if i not in mapped.idM]
    assert len(padded) == 1


def test_schema_directed_translation_correct(fig7):
    instance = parse_xml("<r><A><C/></A><B/></r>")
    mapped = InstMap(fig7).apply(instance)
    query = parse_xr("(A | B | C)*")

    anfa = translate_query(fig7, query)
    target_result = evaluate_anfa_set(anfa, mapped.tree)
    mapped_back = target_result.map_ids(mapped.idM)
    assert mapped_back.ids == evaluate_set(query, instance).ids


def test_naive_agrees_when_no_padding_interferes(fig7):
    """On queries that avoid the padded region the naive strategy
    coincides — the failure is specifically about required nodes."""
    instance = parse_xml("<r><A><C/></A><B/></r>")
    mapped = InstMap(fig7).apply(instance)
    query = parse_xr("A/C")
    naive_query = naive_translate(fig7, query)
    naive_result = evaluate_set(naive_query, mapped.tree)
    assert naive_result.map_ids(mapped.idM).ids == \
        evaluate_set(query, instance).ids


def test_naive_union_substitution_hazard(school):
    """Second Fig. 7 hazard: one tag under several parents — the union
    substitution conflates path(B,A) and path(C,A)."""
    from repro.xtree.parser import parse_xml as _parse

    instance = _parse(
        "<db><class><cno>1</cno><title>t</title>"
        "<type><regular><prereq/></regular></type></class></db>")
    InstMap(school.sigma1).apply(instance)
    # 'class' appears under db (courses/current/course) and under
    # prereq (course): naive substitution unions both paths, so at the
    # root it also matches nothing extra — but under a prereq context
    # the db path is wrong. Translate at context 'prereq':
    query = parse_xr("class")
    naive_query = naive_translate(school.sigma1, query)
    # The naive query contains both alternatives:
    assert "courses" in str(naive_query) and "|" in str(naive_query)
