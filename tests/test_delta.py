"""δ path-mapping tests (proof of Theorem 4.1: δ is injective)."""

import itertools

import pytest

from repro.core.delta import delta_path
from repro.core.errors import TranslationError
from repro.dtd.model import Concat, Disjunction, Star, Str
from repro.xpath.paths import PathStep, XRPath


def _source_paths(dtd, max_len):
    """All XR paths from the root up to a given length, with explicit
    positions on star steps (as the Theorem 3.3 proof uses them)."""
    collected: list[tuple] = []
    frontier: list[tuple] = [()]
    for _ in range(max_len):
        new = []
        for path in frontier:
            current = path[-1].label if path else dtd.root
            production = dtd.production(current)
            if isinstance(production, Concat):
                seen = {}
                for child in production.children:
                    seen[child] = seen.get(child, 0) + 1
                    pos = (seen[child]
                           if production.occurrence_count(child) > 1 else None)
                    new.append(path + (PathStep(child, pos),))
            elif isinstance(production, Disjunction):
                for child in production.children:
                    new.append(path + (PathStep(child),))
            elif isinstance(production, Star):
                for pos in (1, 2):
                    new.append(path + (PathStep(production.child, pos),))
        collected.extend(new)
        frontier = new
        if not new:
            break
    return [XRPath(p) for p in collected]


def test_delta_on_sigma1_examples(school):
    sigma = school.sigma1
    assert str(delta_path(sigma, XRPath.parse("class[position()=1]"))) == \
        "courses/current/course[position()=1]"
    assert str(delta_path(sigma, XRPath.parse("class[position()=2]/cno"))) == \
        "courses/current/course[position()=2]/basic/cno"
    assert str(delta_path(
        sigma, XRPath.parse("class[position()=1]/type/regular"))) == \
        "courses/current/course[position()=1]/category/mandatory/regular"


def test_delta_unpinned_star(school):
    assert str(delta_path(school.sigma1, XRPath.parse("class"))) == \
        "courses/current/course"


def test_delta_text_path(school):
    path = XRPath(( PathStep("class", 1), PathStep("cno")), text=True)
    assert str(delta_path(school.sigma1, path)) == \
        "courses/current/course[position()=1]/basic/cno/text()"


def test_delta_rejects_non_edges(school):
    with pytest.raises(TranslationError):
        delta_path(school.sigma1, XRPath.parse("cno"))  # not a root child
    with pytest.raises(TranslationError):
        delta_path(school.sigma1, XRPath.parse("class/ghost"))


def test_delta_rejects_text_on_non_str(school):
    with pytest.raises(TranslationError):
        delta_path(school.sigma1, XRPath((PathStep("class", 1),), text=True))


def test_delta_injective_school(school):
    """Theorem 4.1(1): δ maps distinct root paths to distinct paths."""
    source_paths = _source_paths(school.classes, 4)
    images = {}
    for path in source_paths:
        image = str(delta_path(school.sigma1, path))
        assert image not in images, \
            f"δ({path}) collides with δ({images[image]})"
        images[image] = path


def test_delta_injective_expansion(bib_expansion):
    source_paths = _source_paths(bib_expansion.source, 4)
    images = [str(delta_path(bib_expansion.embedding, p))
              for p in source_paths]
    assert len(set(images)) == len(images)


def test_delta_prefix_structure(school):
    """δ maps prefixes to prefixes (the substitution is per-step)."""
    long = XRPath.parse("class[position()=1]/type/regular")
    short = XRPath.parse("class[position()=1]/type")
    d_long = delta_path(school.sigma1, long)
    d_short = delta_path(school.sigma1, short)
    assert d_short.is_prefix_of(d_long)


def test_delta_with_start_type(school):
    assert str(delta_path(school.sigma1, XRPath.parse("cno"),
                          start_type="class")) == "basic/cno"
