"""Why the DESIGN.md refinements R1/R2 are load-bearing.

Each test builds an embedding that satisfies the paper's *literal*
conditions but violates a refinement, bypasses validation, and shows
information is actually lost — the failure the refinement prevents.
"""

import pytest

from repro.core.embedding import SchemaEmbedding
from repro.core.errors import InverseError, ViolationCode
from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.schema import load_schema
from repro.dtd.validate import conforms
from repro.xpath.paths import XRPath
from repro.xtree.nodes import tree_equal
from repro.xtree.parser import parse_xml


def _r1_violating_embedding():
    """Two OR paths sharing the OR edge, diverging on AND edges:
    prefix-free and OR-typed (the paper's letter), but the absent
    alternative's path is faked by mindef padding."""
    source = load_schema("a -> b + c\nb -> str\nc -> str")
    target = load_schema(
        "x -> w + v\nw -> y, z\nv -> str\ny -> str\nz -> str")
    return SchemaEmbedding(
        source, target, {"a": "x", "b": "y", "c": "z"},
        {("a", "b", 1): XRPath.parse("w/y"),
         ("a", "c", 1): XRPath.parse("w/z"),
         ("b", "#str", 1): XRPath.parse("text()"),
         ("c", "#str", 1): XRPath.parse("text()")})


def test_r1_violation_is_detected():
    embedding = _r1_violating_embedding()
    codes = {v.code for v in embedding.violations()}
    assert ViolationCode.OR_DIVERGENCE in codes


def test_r1_violation_loses_information():
    """Bypass validation: the two source alternatives map to images
    that differ only in which slot holds real data vs #s padding —
    and for the value '#s' itself the images *collide*."""
    embedding = _r1_violating_embedding()
    instmap = InstMap(embedding, validate=False)

    doc_b = parse_xml("<a><b>#s</b></a>")
    doc_c = parse_xml("<a><c>#s</c></a>")
    image_b = instmap.apply(doc_b).tree
    image_c = instmap.apply(doc_c).tree
    # Both conform to the target...
    assert conforms(image_b, embedding.target)
    assert conforms(image_c, embedding.target)
    # ...and are indistinguishable: σd is not injective on documents,
    # so no inverse can exist (the R1 failure mode).
    assert tree_equal(image_b, image_c)
    # The strict inverse detects the ambiguity instead of guessing.
    with pytest.raises(InverseError):
        invert(embedding, image_b)


def _r2_violating_embedding():
    """An optional alternative whose path coincides with the target's
    default completion: presence and absence look identical."""
    source = load_schema("a -> b + eps\nb -> str")
    target = load_schema("x -> y + z\ny -> str\nz -> str")
    return SchemaEmbedding(
        source, target, {"a": "x", "b": "y"},
        {("a", "b", 1): XRPath.parse("y"),
         ("b", "#str", 1): XRPath.parse("text()")})


def test_r2_violation_is_detected():
    embedding = _r2_violating_embedding()
    codes = {v.code for v in embedding.violations()}
    assert ViolationCode.OPTIONAL_SIGNAL in codes


def test_r2_violation_loses_information():
    embedding = _r2_violating_embedding()
    instmap = InstMap(embedding, validate=False)
    present = parse_xml("<a><b>#s</b></a>")   # ε-alternative's twin
    absent = parse_xml("<a/>")
    image_present = instmap.apply(present).tree
    image_absent = instmap.apply(absent).tree
    # mindef picks the y alternative with #s — identical to the real
    # b-image carrying the value '#s'.
    assert tree_equal(image_present, image_absent)
    recovered = invert(embedding, image_absent)
    # The inverse returns one candidate; since both sources share the
    # image, the other one is necessarily mis-reconstructed.
    assert tree_equal(recovered, present) != tree_equal(recovered, absent)


def test_r3_unpinned_star_detected(school):
    """R3: a star step inside an AND path must be pinned — otherwise
    the path denotes several nodes and σd is ill-defined."""
    sigma = school.sigma1
    broken = SchemaEmbedding(
        sigma.source, sigma.target, dict(sigma.lam),
        {**sigma.paths,
         ("class", "title", 1): XRPath.parse("basic/class/semester/title")})
    codes = {v.code for v in broken.violations()}
    assert ViolationCode.NOT_AND_PATH in codes


def test_r4_star_path_shape_detected():
    """R4: a STAR path needs exactly one unpinned carrier."""
    source = load_schema("a -> b*\nb -> str")
    target = load_schema("x -> s\ns -> i*\ni -> j*\nj -> str")
    two_stars = SchemaEmbedding(
        source, target, {"a": "x", "b": "j"},
        {("a", "b", 1): XRPath.parse("s/i/j"),
         ("b", "#str", 1): XRPath.parse("text()")})
    codes = {v.code for v in two_stars.violations()}
    assert ViolationCode.NOT_STAR_PATH in codes
