"""The packed store: zero-copy views, generations, zero JSON parses.

The contract under test:

* a pack round-trips every artifact of the JSON store fingerprint-
  exactly (schemas, embeddings with validation flags, search results);
* opening a :class:`StoreView` performs **zero** JSON parses — the
  assertable counter behind the fleet's warm-start guarantee — while
  the JSON store pays one parse per artifact read;
* ``Engine.warm_start(view)`` serves byte-identically to a warm start
  from the JSON store, with zero compile misses;
* generations are monotonic, published atomically via ``CURRENT``, and
  an open view survives a repack (mmap outlives the directory entry);
* ``ServiceState.reload_from`` adopts a new generation additively;
* corrupt and missing packs fail loudly with :class:`PackError`.
"""

from __future__ import annotations

import pytest

from repro.dtd.generate import InstanceGenerator
from repro.engine import (
    ArtifactStore,
    Engine,
    PackError,
    StoreView,
    current_generation,
    open_view,
    pack_store,
)
from repro.engine.storepack import current_pack_path
from repro.serve import ServiceState
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string


@pytest.fixture()
def packed_store(tmp_path, school):
    """A JSON store with two schemas, one validated embedding and one
    search result — packed once (generation 1)."""
    engine = Engine()
    result = engine.find_embedding(school.classes, school.school,
                                   school.att)
    assert result.found
    engine.compile_embedding(school.sigma1, ensure_valid=True)
    path = tmp_path / "store"
    engine.save_store(path)
    pack_store(path)
    return path


# -- round trip ---------------------------------------------------------------

def test_pack_roundtrips_every_artifact(packed_store):
    store = ArtifactStore(packed_store, create=False)
    with open_view(packed_store) as view:
        assert view.schema_fingerprints() == store.schema_fingerprints()
        assert view.embedding_fingerprints() == \
            store.embedding_fingerprints()
        for fingerprint in store.schema_fingerprints():
            assert view.get_schema(fingerprint).fingerprint() == \
                fingerprint
            assert view.schema_format(fingerprint) == \
                store.schema_format(fingerprint)
        for fingerprint in store.embedding_fingerprints():
            assert view.get_embedding(fingerprint).fingerprint() == \
                fingerprint
            assert view.embedding_validated(fingerprint) == \
                store.embedding_validated(fingerprint)
        packed = {key: result for key, result in view.iter_searches()}
        stored = {key: result for key, result in store.iter_searches()}
        assert packed.keys() == stored.keys()
        for key, result in stored.items():
            assert packed[key].method == result.method
            assert packed[key].quality == result.quality
            assert (packed[key].embedding.fingerprint()
                    == result.embedding.fingerprint())


def test_view_parses_no_json_but_json_store_does(packed_store):
    store = ArtifactStore(packed_store, create=False)
    for fingerprint in store.embedding_fingerprints():
        store.get_embedding(fingerprint)
    assert store.parses > 0  # the JSON path pays a parse per artifact
    with open_view(packed_store) as view:
        for fingerprint in view.embedding_fingerprints():
            view.get_embedding(fingerprint)
        assert view.json_parses == 0
        assert view.stats()["json_parses"] == 0
        assert view.unpickles > 0


def test_warm_start_from_view_is_byte_identical(packed_store, school):
    xml = to_string(InstanceGenerator(school.classes, seed=4,
                                      max_depth=8,
                                      star_mean=2.0).generate())
    with open_view(packed_store) as view:
        warm = Engine.warm_start(view)
        reference = Engine.warm_start(packed_store)
        fingerprint = school.sigma1.fingerprint()
        sigma = view.get_embedding(fingerprint)
        served = to_string(
            warm.apply_embedding(sigma, parse_xml(xml)).tree)
        direct = to_string(reference.apply_embedding(
            school.sigma1, parse_xml(xml)).tree)
        assert served == direct
        stats = warm.stats()
        assert stats["schemas"]["misses"] == 0
        assert stats["embeddings"]["misses"] == 0
        assert view.json_parses == 0


# -- generations --------------------------------------------------------------

def test_generations_are_monotonic_and_current(packed_store):
    assert current_generation(packed_store) == 1
    second = pack_store(packed_store)
    assert current_generation(packed_store) == 2
    assert current_pack_path(packed_store) == second
    with open_view(packed_store) as view:
        assert view.generation == 2
    explicit = pack_store(packed_store, generation=9)
    assert current_generation(packed_store) == 9
    assert explicit.name == "pack-00000009.bin"


def test_open_view_survives_repack(packed_store):
    view = open_view(packed_store)
    fingerprint = view.embedding_fingerprints()[0]
    pack_store(packed_store)  # publishes generation 2
    # The old view's mmap stays valid: in-flight work finishes on the
    # old generation while new opens see the new one.
    assert view.get_embedding(fingerprint).fingerprint() == fingerprint
    assert view.generation == 1
    with open_view(packed_store) as fresh:
        assert fresh.generation == 2
    view.close()


def test_unpacked_store_has_no_generation(tmp_path, school):
    engine = Engine()
    engine.compile_embedding(school.sigma1, ensure_valid=True)
    path = tmp_path / "store"
    engine.save_store(path)
    assert current_generation(path) is None
    with pytest.raises(PackError):
        open_view(path)


# -- hot reload through ServiceState ------------------------------------------

def test_reload_from_adopts_new_generation(packed_store, school):
    state = ServiceState.from_view(open_view(packed_store))
    assert state.generation == 1
    assert state.store_json_parses == 0
    before = dict(state.embeddings)

    # A second embedding lands in the store; repack publishes gen 2.
    extra = Engine()
    extra.compile_embedding(school.sigma2, ensure_valid=True)
    extra.save_store(packed_store)
    pack_store(packed_store)

    adopted = state.reload_from(open_view(packed_store))
    assert adopted >= 1
    assert state.generation == 2
    assert state.reloads == 1
    assert set(before) < set(state.embeddings)
    assert school.sigma2.fingerprint() in state.embeddings
    # Reloading the same generation again is a no-op adoption.
    assert state.reload_from(open_view(packed_store)) == 0
    assert state.reloads == 2
    state.view.close()


# -- failure modes ------------------------------------------------------------

def test_corrupt_pack_raises_pack_error(packed_store):
    path = current_pack_path(packed_store)
    raw = bytearray(path.read_bytes())
    raw[:4] = b"XXXX"
    path.write_bytes(bytes(raw))
    with pytest.raises(PackError):
        StoreView(path)


def test_missing_pack_file_raises_pack_error(tmp_path):
    with pytest.raises(PackError):
        StoreView(tmp_path / "nope.bin")


# -- generated codecs ---------------------------------------------------------

def test_pack_carries_codecs_and_fleet_serves_them(packed_store, school):
    store = ArtifactStore(packed_store, create=False)
    fingerprint = school.sigma1.fingerprint()
    assert store.codec_fingerprints() == [fingerprint]
    with open_view(packed_store) as view:
        assert view.codec_fingerprints() == [fingerprint]
        assert view.get_codec_source(fingerprint) == \
            store.get_codec_source(fingerprint)
        assert view.stats()["codecs"] == 1
        warm = Engine.warm_start(view)
        compiled = warm.compile_embedding(view.get_embedding(fingerprint))
        assert compiled._codec not in (None, False)  # attached from pack
        xml = ("<db><class><cno>1</cno><title>t</title>"
               "<type><project>p</project></type></class></db>")
        from repro.core.instmap import InstMap
        assert compiled.map_text(xml) == to_string(
            InstMap(school.sigma1).apply(parse_xml(xml)).tree)
        assert view.json_parses == 0


def test_precodec_pack_reads_with_empty_codec_section(tmp_path, school):
    """A pack written before the codec plane existed (no ``codecs``
    index section) opens and serves with an empty codec table."""
    import json as json_mod
    import shutil

    engine = Engine()
    engine.compile_embedding(school.sigma1, ensure_valid=True)
    path = tmp_path / "store"
    engine.save_store(path)
    manifest_path = path / "manifest.json"
    manifest = json_mod.loads(manifest_path.read_text())
    manifest.pop("codecs")
    manifest_path.write_text(json_mod.dumps(manifest, indent=2,
                                            sort_keys=True))
    shutil.rmtree(path / "codecs")
    pack_store(path)
    with open_view(path) as view:
        assert view.codec_fingerprints() == []
        assert view.stats()["codecs"] == 0
        warm = Engine.warm_start(view)
        assert warm.compile_embedding(school.sigma1).codec is not None


# -- generation carry-forward and compaction ----------------------------------

def _drop_embedding_from_store(store_root, fingerprint: str) -> None:
    """Simulate an artifact removed from the JSON store (the manifest
    entry disappears; the pack must decide what happens to it)."""
    import json as json_mod

    manifest_path = store_root / "manifest.json"
    manifest = json_mod.loads(manifest_path.read_text())
    del manifest["embeddings"][fingerprint]
    manifest.get("codecs", {}).pop(fingerprint, None)
    manifest_path.write_text(json_mod.dumps(manifest, indent=2,
                                            sort_keys=True))


def test_pack_carries_forward_dropped_artifacts(packed_store, school):
    """The default repack keeps serving artifacts the source store
    dropped (raw blobs copied from the previous generation, flagged
    stale); ``compact=True`` finally drops them."""
    dropped = school.sigma1.fingerprint()
    _drop_embedding_from_store(packed_store, dropped)

    pack_store(packed_store)  # generation 2: carry-forward by default
    with open_view(packed_store) as view:
        assert dropped in view.embedding_fingerprints()
        assert dropped in view.stale_fingerprints()
        assert view.embedding_validated(dropped)
        assert view.get_embedding(dropped).fingerprint() == dropped
        assert view.stale_serves >= 1
        assert view.stats()["stale"] >= 1

    # The debt persists across further carry-forward generations...
    pack_store(packed_store)  # generation 3
    with open_view(packed_store) as view:
        assert dropped in view.stale_fingerprints()

    # ...until a compact pack drops every carried blob.
    pack_store(packed_store, compact=True)  # generation 4
    with open_view(packed_store) as view:
        assert dropped not in view.embedding_fingerprints()
        assert not view.stale_fingerprints()
        assert view.stats()["stale"] == 0


def test_stale_serves_surface_in_metrics(packed_store, school):
    """A serving state counts requests that resolve carried artifacts
    and reports them via the ``/metrics`` payload."""
    from repro.serve.handlers import _handle_metrics

    dropped = school.sigma1.fingerprint()
    _drop_embedding_from_store(packed_store, dropped)
    pack_store(packed_store)

    state = ServiceState.from_view(open_view(packed_store))
    assert dropped in state.stale
    assert state.stale_serves == 0
    fingerprint, embedding = state.resolve_embedding(dropped[:12])
    assert fingerprint == dropped
    assert embedding.fingerprint() == dropped
    assert state.stale_serves == 1
    # Live artifacts do not count.
    state.resolve_schema(school.classes.fingerprint(), "source")
    assert state.stale_serves == 1

    payload = _handle_metrics(state)
    assert payload["stale_artifacts"] == len(state.stale) >= 1
    assert payload["stale_serves"] == 1
    state.view.close()
