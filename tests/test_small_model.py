"""E10: the small-model property (Theorem 4.10)."""

import pytest

from repro.core.embedding import SchemaEmbedding, build_embedding
from repro.core.smallmodel import (
    check_bounds,
    simplify_embedding,
    theorem_bound,
)
from repro.dtd.model import Concat, Disjunction, Star, Str
from repro.schema import load_schema
from repro.xpath.paths import XRPath


def test_theorem_bounds_by_shape():
    e2 = 10
    assert theorem_bound(Concat(("a", "b", "c")), e2) == 30
    assert theorem_bound(Disjunction(("a", "b")), e2) == 30
    assert theorem_bound(Star("a"), e2) == 20
    assert theorem_bound(Str(), e2) == 10


def test_school_embedding_within_bounds(school):
    assert check_bounds(school.sigma1) == []
    assert check_bounds(school.sigma2) == []


def test_expansions_within_bounds(bib_expansion, orders_expansion):
    assert check_bounds(bib_expansion.embedding) == []
    assert check_bounds(orders_expansion.embedding) == []


@pytest.fixture()
def cyclic_target_embedding():
    """A target with a harmless cycle: paths can be artificially
    inflated by pumping the cycle."""
    source = load_schema("a -> b\nb -> str")
    target = load_schema("""
        x -> s
        s -> i*
        i -> y
        y -> str
    """)
    inflated = build_embedding(
        source, target, {"a": "x", "b": "y"},
        {("a", "b"):
         "s/i[position()=1]/y",
         ("b", "str"): "text()"})
    inflated.check()
    return inflated


def test_simplify_keeps_valid(cyclic_target_embedding):
    simplified = simplify_embedding(cyclic_target_embedding)
    assert simplified.is_valid()


def test_simplify_removes_pumped_cycle():
    """A path that loops through the target cycle twice shrinks."""
    source = load_schema("a -> b\nb -> str")
    target = load_schema("""
        x -> w, y
        w -> x + nil
        nil -> eps
        y -> str
    """)
    _pumped = build_embedding(
        source, target, {"a": "x", "b": "y"},
        # x -> w -> x -> w -> x -> y : pumps the (w,x) cycle twice.
        {("a", "b"): "w/x/w/x/y", ("b", "str"): "text()"})
    # w edges are OR edges (w -> x + nil), so this is not an AND path —
    # build a concat-only cyclic target instead:
    target2 = load_schema("""
        x -> s
        s -> x2*
        x2 -> s2, y
        s2 -> x3*
        x3 -> y2
        y -> str
        y2 -> str
    """)
    pumped2 = build_embedding(
        source, target2, {"a": "x", "b": "y"},
        {("a", "b"): "s/x2[position()=1]/y",
         ("b", "str"): "text()"}).check()
    simplified = simplify_embedding(pumped2)
    assert simplified.is_valid()
    assert len(simplified.paths[("a", "b", 1)]) <= 3


def test_simplify_preserves_prefix_freeness():
    """Cycle removal must not create prefix conflicts — a cycle kept
    only to stay prefix-free is not removable."""
    source = load_schema("a -> b, c\nb -> str\nc -> str")
    # Target cycle: x -> s; s -> x2*; x2 -> y, s.  path(a,b) pins one
    # unfolding; path(a,c) pins two.  Removing c's extra cycle would
    # collide with b's path.
    target = load_schema("""
        x -> s
        s -> x2*
        x2 -> y, s
        y -> str
    """)
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y", "c": "y"},
        {("a", "b"): "s/x2[position()=1]/y",
         ("a", "c"): "s/x2[position()=1]/s/x2[position()=1]/y",
         ("b", "str"): "text()", ("c", "str"): "text()"}).check()
    simplified = simplify_embedding(embedding)
    assert simplified.is_valid()
    # path(a,c) keeps a strictly longer path than path(a,b).
    assert len(simplified.paths[("a", "c", 1)]) > \
        len(simplified.paths[("a", "b", 1)])


def test_search_results_within_bounds(school):
    from repro.core.similarity import SimilarityMatrix
    from repro.matching.search import find_embedding

    result = find_embedding(school.classes, school.school,
                            SimilarityMatrix.permissive(), seed=3)
    assert result.found and result.embedding is not None
    assert check_bounds(result.embedding) == []
