"""Section 4.5 / Example 4.9: integrating multiple sources."""

import pytest

from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.core.multi import (
    EmbeddingError,
    IntegrationConflict,
    integrate,
    merge_dtds,
)
from repro.dtd.generate import random_instance
from repro.dtd.validate import validate
from repro.xtree.nodes import tree_equal
from repro.xtree.parser import parse_xml


@pytest.fixture()
def docs(school):
    classes_doc = parse_xml(
        "<db><class><cno>CS331</cno><title>DB</title>"
        "<type><regular><prereq/></regular></type></class></db>")
    students_doc = parse_xml(
        "<db><student><ssn>1</ssn><name>Ann</name>"
        "<taking><cno>CS331</cno></taking></student></db>")
    return classes_doc, students_doc


def test_example_4_9_integration(school, docs):
    classes_doc, students_doc = docs
    result = integrate([school.sigma1, school.sigma2],
                       [classes_doc, students_doc])
    validate(result.tree, school.school)
    # Both sides landed in one tree.
    school_tree = result.tree
    current = school_tree.children_tagged("courses")[0] \
        .children_tagged("current")[0]
    assert len(current.children_tagged("course")) == 1
    students = school_tree.children_tagged("students")[0]
    assert len(students.children_tagged("student")) == 1


def test_integration_each_source_recoverable(school, docs):
    classes_doc, students_doc = docs
    result = integrate([school.sigma1, school.sigma2],
                       [classes_doc, students_doc])
    assert tree_equal(invert(school.sigma1, result.tree), classes_doc)
    assert tree_equal(invert(school.sigma2, result.tree), students_doc)


def test_integration_random_instances(school):
    for seed in range(4):
        classes_doc = random_instance(school.classes, seed=seed, max_depth=7)
        students_doc = random_instance(school.students, seed=seed + 50)
        result = integrate([school.sigma1, school.sigma2],
                           [classes_doc, students_doc])
        validate(result.tree, school.school)
        assert tree_equal(invert(school.sigma1, result.tree), classes_doc)
        assert tree_equal(invert(school.sigma2, result.tree), students_doc)


def test_interfering_sources_detected(school, docs):
    classes_doc, _students = docs
    # Same embedding twice: both contribute star instances at current.
    with pytest.raises(IntegrationConflict):
        integrate([school.sigma1, school.sigma1],
                  [classes_doc, classes_doc])


def test_integration_requires_matching_lengths(school, docs):
    with pytest.raises(EmbeddingError, match="one instance per embedding"):
        integrate([school.sigma1], list(docs))


def test_merge_dtds_disjoint(school):
    merged, renamings = merge_dtds([school.classes, school.students])
    # Shared type names (db, cno) get prefixed in the second source.
    assert renamings[0] == {}
    assert "db" in renamings[1] and renamings[1]["db"] == "s1.db"
    assert merged.root == "merged"
    assert merged.production("merged").children == ("db", "s1.db")
    from repro.dtd.consistency import is_consistent

    assert is_consistent(merged)


def test_merge_dtds_preserves_instances(school):
    merged, renamings = merge_dtds([school.classes, school.students])
    from repro.xtree.nodes import elem

    classes_doc = random_instance(school.classes, seed=1, max_depth=6)
    students_doc = random_instance(school.students, seed=2)
    # Rename the students doc's tags per the renaming.
    def rename(node):
        node.tag = renamings[1].get(node.tag, node.tag)
        for child in node.element_children():
            rename(child)
    rename(students_doc)
    combined = elem("merged", classes_doc, students_doc)
    validate(combined, merged)
