"""E5: InstMap — production fragments, mindef padding, idM (Section 4.2)."""

import pytest

from repro.core.embedding import build_embedding
from repro.core.errors import EmbeddingError
from repro.core.instmap import InstMap, apply_embedding
from repro.dtd.generate import random_instance
from repro.schema import load_schema
from repro.dtd.validate import conforms, validate
from repro.xtree.nodes import elem, tree_size
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string


def test_example_4_4_structure(school):
    """The Example 4.4 walkthrough: one class maps into the school
    skeleton with history/credit/... padded by mindef."""
    source = parse_xml(
        "<db><class><cno>CS331</cno><title>DB</title>"
        "<type><regular><prereq/></regular></type></class></db>")
    result = InstMap(school.sigma1).apply(source)
    tree = result.tree
    validate(tree, school.school)

    assert tree.tag == "school"
    courses = tree.children_tagged("courses")[0]
    # history is a mindef default: a childless history node.
    history = courses.children_tagged("history")[0]
    assert history.children == []
    course = courses.children_tagged("current")[0].children_tagged("course")[0]
    basic = course.children_tagged("basic")[0]
    assert basic.children_tagged("cno")[0].child_text() == "CS331"
    # credit is padded with #s.
    assert basic.children_tagged("credit")[0].child_text() == "#s"
    semester = basic.children_tagged("class")[0].children_tagged("semester")[0]
    assert semester.children_tagged("title")[0].child_text() == "DB"
    assert semester.children_tagged("year")[0].child_text() == "#s"
    # category routes through mandatory/regular.
    category = course.children_tagged("category")[0]
    mandatory = category.children_tagged("mandatory")[0]
    assert mandatory.children_tagged("regular")
    # students side is pure mindef: an empty students list.
    assert tree.children_tagged("students")[0].children == []


def test_idm_maps_images_to_sources(school):
    source = parse_xml(
        "<db><class><cno>CS331</cno><title>DB</title>"
        "<type><project>p1</project></type></class></db>")
    result = InstMap(school.sigma1).apply(source)
    # Every source element has an image (σd is injective, Thm 4.1).
    source_ids = {node.node_id for node in source.iter()}
    mapped_sources = set(result.idM.values())
    assert source_ids == mapped_sources
    # And the mapping is a bijection onto its domain.
    assert len(result.idM) == len(source_ids)
    assert set(result.source_to_target) == source_ids


def test_idm_respects_tags(school):
    source = parse_xml(
        "<db><class><cno>1</cno><title>t</title>"
        "<type><project>p</project></type></class></db>")
    result = InstMap(school.sigma1).apply(source)
    lam = school.sigma1.lam
    for target_id, source_id in result.idM.items():
        target_node = result.tree.find_by_id(target_id)
        source_node = source.find_by_id(source_id)
        assert target_node is not None and source_node is not None
        if source_node.is_text():
            assert target_node.is_text()
            assert target_node.value == source_node.value
        else:
            assert target_node.tag == lam[source_node.tag]


def test_type_safety_on_random_instances(school):
    instmap = InstMap(school.sigma1)
    for seed in range(8):
        instance = random_instance(school.classes, seed=seed, max_depth=9)
        result = instmap.apply(instance)
        validate(result.tree, school.school)


def test_star_children_keep_order(school):
    source = parse_xml(
        "<db>"
        "<class><cno>1</cno><title>a</title><type><project>x</project></type></class>"
        "<class><cno>2</cno><title>b</title><type><project>y</project></type></class>"
        "<class><cno>3</cno><title>c</title><type><project>z</project></type></class>"
        "</db>")
    result = InstMap(school.sigma1).apply(source)
    current = result.tree.children_tagged("courses")[0] \
        .children_tagged("current")[0]
    cnos = [course.children_tagged("basic")[0].children_tagged("cno")[0]
            .child_text() for course in current.children_tagged("course")]
    assert cnos == ["1", "2", "3"]


def test_empty_star_produces_empty_carrier(school):
    result = InstMap(school.sigma1).apply(parse_xml("<db/>"))
    validate(result.tree, school.school)
    current = result.tree.children_tagged("courses")[0] \
        .children_tagged("current")[0]
    assert current.children == []


def test_invalid_embedding_rejected_at_compile_time():
    source = load_schema("a -> b*\nb -> str")
    target = load_schema("x -> y\ny -> str")
    embedding = build_embedding(source, target, {"a": "x", "b": "y"},
                                {("a", "b"): "y", ("b", "str"): "text()"})
    with pytest.raises(EmbeddingError):
        InstMap(embedding)


def test_wrong_instance_root_rejected(school):
    instmap = InstMap(school.sigma1)
    with pytest.raises(EmbeddingError):
        instmap.apply(elem("class"))


def test_linear_output_growth(school):
    """InstMap output is linear in the input (Section 4.2: the
    algorithm is linear in the larger of T1, T2)."""
    sizes = []
    instmap = InstMap(school.sigma1)
    for count in (1, 2, 4, 8):
        body = ("<class><cno>1</cno><title>t</title>"
                "<type><project>p</project></type></class>") * count
        result = instmap.apply(parse_xml(f"<db>{body}</db>"))
        sizes.append(tree_size(result.tree))
    deltas = [b - a for a, b in zip(sizes, sizes[1:])]
    # Doubling the classes adds proportional target nodes.
    assert deltas[1] == pytest.approx(2 * deltas[0], rel=0.01)
    assert deltas[2] == pytest.approx(2 * deltas[1], rel=0.01)


def test_expansion_ground_truth_instmap(bib_expansion):
    instmap = InstMap(bib_expansion.embedding)
    for seed in range(5):
        instance = random_instance(bib_expansion.source, seed=seed)
        result = instmap.apply(instance)
        validate(result.tree, bib_expansion.target)


def test_students_sigma2_instmap(school):
    source = parse_xml(
        "<db><student><ssn>123</ssn><name>Ann</name>"
        "<taking><cno>CS331</cno><cno>CS240</cno></taking></student></db>")
    result = InstMap(school.sigma2).apply(source)
    validate(result.tree, school.school)
    student = result.tree.children_tagged("students")[0] \
        .children_tagged("student")[0]
    assert student.children_tagged("ssn")[0].child_text() == "123"
    assert student.children_tagged("gpa")[0].child_text() == "#s"
    cnos = [c.child_text() for c in
            student.children_tagged("taking")[0].children_tagged("cno")]
    assert cnos == ["CS331", "CS240"]
    # The courses side is all mindef.
    assert result.tree.children_tagged("courses")[0] \
        .children_tagged("current")[0].children == []


def test_disjunction_conflict_raises():
    """Manually corrupt: two source children forced through one OR slot
    (cannot happen for valid embeddings; guards the internal error)."""
    from repro.core.embedding import SchemaEmbedding
    from repro.xpath.paths import XRPath

    source = load_schema("a -> b, c\nb -> str\nc -> str")
    target = load_schema("x -> w\nw -> y + z\ny -> str\nz -> str")
    # Invalid on purpose: AND edges onto OR paths.
    embedding = SchemaEmbedding(
        source, target, {"a": "x", "b": "y", "c": "z"},
        {("a", "b", 1): XRPath.parse("w/y"),
         ("a", "c", 1): XRPath.parse("w/z"),
         ("b", "#str", 1): XRPath.parse("text()"),
         ("c", "#str", 1): XRPath.parse("text()")})
    instmap = InstMap(embedding, validate=False)
    with pytest.raises(EmbeddingError):
        instmap.apply(parse_xml("<a><b>1</b><c>2</c></a>"))


# -- empty PCDATA end-to-end (the "<a></a>" under A -> str contract) ---------

def _str_bundle():
    source = load_schema("a -> str")
    target = load_schema("x -> wrap\nwrap -> str", name="t")
    sigma = build_embedding(source, target, {"a": "x"},
                            {("a", "str"): "wrap/text()"})
    return source, target, sigma


def test_empty_pcdata_conforms_and_maps():
    source, target, sigma = _str_bundle()
    document = parse_xml("<a></a>")
    assert conforms(document, source)
    result = InstMap(sigma).apply(document)
    validate(result.tree, target)
    # The image carries the empty string value.
    wrap = result.tree.children_tagged("wrap")[0]
    assert wrap.child_text() == ""


def test_empty_pcdata_roundtrips_through_inversion():
    from repro.core.inverse import run_invert
    from repro.xtree.nodes import tree_equal

    _source, _target, sigma = _str_bundle()
    document = parse_xml("<a></a>")
    mapped = InstMap(sigma).apply(document).tree
    assert tree_equal(run_invert(sigma, mapped), document)
    # ... and through a serialise + re-parse of the mapped document,
    # which drops the empty text run entirely.
    reparsed = parse_xml(to_string(mapped))
    assert tree_equal(run_invert(sigma, reparsed), document)


def test_str_with_element_child_raises_embedding_error():
    _source, _target, sigma = _str_bundle()
    bad = parse_xml("<a><b></b></a>")
    with pytest.raises(EmbeddingError):  # never IndexError
        InstMap(sigma).apply(bad)


def test_undeclared_instance_edge_raises_embedding_error():
    """A document with children the schema never declared must surface
    as EmbeddingError (malformed corpus input), not a raw KeyError."""
    source = load_schema("a -> b\nb -> str")
    target = load_schema("x -> y\ny -> str", name="t")
    sigma = build_embedding(source, target, {"a": "x", "b": "y"},
                            {("a", "b"): "y", ("b", "str"): "text()"})
    instmap = InstMap(sigma)
    with pytest.raises(EmbeddingError):
        instmap.apply(parse_xml("<a><b>ok</b><b>extra</b></a>"))


def test_undeclared_element_type_raises_embedding_error():
    """An element type λ never covers must not leak a raw KeyError."""
    source = load_schema("db -> item*\nitem -> str")
    target = load_schema("shop -> entry*\nentry -> str", name="t")
    sigma = build_embedding(source, target, {"db": "shop", "item": "entry"},
                            {("db", "item"): "entry",
                             ("item", "str"): "text()"})
    with pytest.raises(EmbeddingError):
        InstMap(sigma).apply(parse_xml("<db><mystery/></db>"))


def test_apply_embedding_never_raises_raw_valueerror_or_indexerror():
    """The batch-ingestion contract over a hostile instance corpus."""
    source, _target, sigma = _str_bundle()
    hostile = ["<a><b/></a>", "<wrong></wrong>", "<a><a></a></a>"]
    for snippet in hostile:
        document = parse_xml(snippet)
        try:
            apply_embedding(sigma, document)
        except EmbeddingError:
            pass  # the only acceptable failure mode


def test_strict_inversion_rejects_element_content_at_text_endpoint():
    """Empty-string tolerance must not swallow malformed images: a text
    endpoint holding *element* content is still an InverseError."""
    from repro.core.errors import InverseError
    from repro.core.inverse import run_invert

    _source, _target, sigma = _str_bundle()
    with pytest.raises(InverseError):
        run_invert(sigma, parse_xml("<x><wrap><junk/></wrap></x>"))
