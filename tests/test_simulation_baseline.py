"""The graph-similarity baseline: where it works and where it fails."""

import pytest

from repro.core.similarity import SimilarityMatrix
from repro.schema import load_schema
from repro.matching.simulation import greatest_simulation, simulation_mapping


def test_identical_schemas_simulate():
    dtd = load_schema("r -> a, b\na -> str\nb -> c*\nc -> str")
    mapping = simulation_mapping(dtd, dtd)
    assert mapping == {t: t for t in dtd.types}


def test_fig1_not_simulatable(school):
    """The paper's core motivation: "one cannot map S0 to S by graph
    similarity" — the school target restructures the class data."""
    assert simulation_mapping(school.classes, school.school) is None
    assert simulation_mapping(school.students, school.school) is None


def test_embedding_succeeds_where_simulation_fails(school):
    """Schema embedding strictly generalises similarity on Fig. 1."""
    from repro.matching.search import find_embedding

    assert simulation_mapping(school.classes, school.school) is None
    result = find_embedding(school.classes, school.school,
                            SimilarityMatrix.permissive(), seed=1)
    assert result.found


def test_simulation_respects_edge_kinds():
    source = load_schema("r -> a*\na -> str")
    target = load_schema("r -> a\na -> str")  # AND edge, not STAR
    assert simulation_mapping(source, target) is None


def test_simulation_respects_att():
    dtd = load_schema("r -> a\na -> str")
    att = SimilarityMatrix()
    att.set("r", "r", 1.0)   # 'a' has no admissible image
    assert simulation_mapping(dtd, dtd, att) is None


def test_greatest_simulation_is_a_simulation():
    source = load_schema("r -> a\na -> b + c\nb -> str\nc -> str")
    target = load_schema(
        "r -> a, x\na -> b + c\nx -> str\nb -> str\nc -> str")
    att = SimilarityMatrix.permissive()
    relation = greatest_simulation(source, target, att)
    for (a, c) in relation:
        for edge in source.edges_from(a):
            assert any(candidate.kind is edge.kind
                       and (edge.child, candidate.child) in relation
                       for candidate in target.edges_from(c))


def test_simulation_into_larger_target():
    source = load_schema("r -> a\na -> str")
    target = load_schema("r -> a, b\na -> str\nb -> str")
    mapping = simulation_mapping(source, target)
    assert mapping == {"r": "r", "a": "a"}
