"""E9: generated σd⁻¹ stylesheets recover the source (Section 4.3)."""

import pytest

from repro.core.instmap import InstMap
from repro.dtd.generate import random_instance
from repro.workloads.library import SCHEMA_LIBRARY
from repro.workloads.noise import expand_schema
from repro.xslt.engine import apply_stylesheet
from repro.xslt.forward import forward_stylesheet
from repro.xslt.inverse import inverse_stylesheet
from repro.xslt.serialize import stylesheet_to_xslt
from repro.xtree.nodes import tree_equal
from repro.xtree.parser import parse_xml


def test_inverse_roundtrip_school(school):
    forward = forward_stylesheet(school.sigma1)
    inverse = inverse_stylesheet(school.sigma1)
    for seed in range(6):
        instance = random_instance(school.classes, seed=seed, max_depth=8)
        image = apply_stylesheet(forward, instance)
        assert tree_equal(apply_stylesheet(inverse, image), instance)


def test_inverse_roundtrip_students(school):
    forward = forward_stylesheet(school.sigma2)
    inverse = inverse_stylesheet(school.sigma2)
    for seed in range(6):
        instance = random_instance(school.students, seed=seed)
        image = apply_stylesheet(forward, instance)
        assert tree_equal(apply_stylesheet(inverse, image), instance)


@pytest.mark.parametrize("name", ["bib", "orders", "auction"])
def test_inverse_roundtrip_expansions(name):
    expansion = expand_schema(SCHEMA_LIBRARY[name](), seed=29)
    instmap = InstMap(expansion.embedding)
    inverse = inverse_stylesheet(expansion.embedding)
    for seed in range(3):
        instance = random_instance(expansion.source, seed=seed, max_depth=7)
        image = instmap.apply(instance).tree
        assert tree_equal(apply_stylesheet(inverse, image), instance)


def test_example_4_5_course_template(school):
    """The course → class template of Example 4.5."""
    rendered = stylesheet_to_xslt(inverse_stylesheet(school.sigma1))
    assert '<xsl:template match="course" mode="inv-class">' in rendered
    assert ('<xsl:apply-templates select="basic/cno" mode="inv-cno"/>'
            in rendered)
    assert ('select="basic/class/semester[position()=1]/title"'
            in rendered)
    assert ('<xsl:apply-templates select="category" mode="inv-type"/>'
            in rendered)


def test_example_4_5_category_templates(school):
    """The two qualified category templates of Example 4.5."""
    rendered = stylesheet_to_xslt(inverse_stylesheet(school.sigma1))
    assert ('<xsl:template match="category[mandatory/regular]" '
            'mode="inv-type">' in rendered)
    assert ('<xsl:template match="category[advanced/project]" '
            'mode="inv-type">' in rendered)


def test_noninjective_lambda_needs_modes():
    """Fig. 3(c): λ(B) = λ(C) = y — per-source-type modes (R5) keep
    the inverse unambiguous."""
    from repro.core.embedding import build_embedding
    from repro.schema import load_schema

    source = load_schema("a -> b, c\nb -> str\nc -> str")
    target = load_schema("x -> y, y\ny -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y", "c": "y"},
        {("a", "b"): "y[position()=1]", ("a", "c"): "y[position()=2]",
         ("b", "str"): "text()", ("c", "str"): "text()"}).check()
    forward = forward_stylesheet(embedding)
    inverse = inverse_stylesheet(embedding)
    instance = parse_xml("<a><b>bee</b><c>sea</c></a>")
    image = apply_stylesheet(forward, instance)
    recovered = apply_stylesheet(inverse, image)
    assert tree_equal(recovered, instance)
    rendered = stylesheet_to_xslt(inverse)
    assert 'mode="inv-b"' in rendered and 'mode="inv-c"' in rendered


def test_optional_fallback_rule():
    from repro.core.embedding import build_embedding
    from repro.schema import load_schema

    source = load_schema("a -> b + eps\nb -> str")
    target = load_schema("x -> a0pad + y\na0pad -> eps\ny -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y"},
        {("a", "b"): "y", ("b", "str"): "text()"}).check()
    forward = forward_stylesheet(embedding)
    inverse = inverse_stylesheet(embedding)
    for body in ["<a><b>v</b></a>", "<a/>"]:
        instance = parse_xml(body)
        image = apply_stylesheet(forward, instance)
        assert tree_equal(apply_stylesheet(inverse, image), instance)


def test_inverse_agrees_with_native(school):
    from repro.core.inverse import invert

    instmap = InstMap(school.sigma1)
    inverse = inverse_stylesheet(school.sigma1)
    instance = random_instance(school.classes, seed=11, max_depth=8)
    image = instmap.apply(instance).tree
    assert tree_equal(apply_stylesheet(inverse, image),
                      invert(school.sigma1, image))
