"""Matching algorithms: prefix-free paths, local embeddings, assembly."""


import pytest

from repro.core.similarity import SimilarityMatrix
from repro.matching.assemble import assemble_quality, assemble_random
from repro.matching.indepset import assemble_indepset
from repro.matching.local import LocalEmbedder, LocalSearchConfig
from repro.matching.prefix_free import (
    PathKind,
    PathRequest,
    enumerate_paths,
    prefix_free_assign,
)
from repro.matching.search import find_embedding
from repro.workloads.library import school_example
from repro.workloads.noise import expand_schema, noisy_att

SCHOOL = school_example()


# -- path enumeration ------------------------------------------------------

def test_enumerate_and_paths():
    paths = enumerate_paths(SCHOOL.school, "course",
                            PathRequest(PathKind.AND, "title"), max_len=5)
    rendered = [str(p) for p in paths]
    assert "basic/class/semester[position()=1]/title" in rendered


def test_enumerate_or_paths():
    paths = enumerate_paths(SCHOOL.school, "category",
                            PathRequest(PathKind.OR, "regular"))
    assert [str(p) for p in paths] == ["mandatory/regular"]


def test_enumerate_star_paths():
    paths = enumerate_paths(SCHOOL.school, "school",
                            PathRequest(PathKind.STAR, "course"), max_len=3)
    assert {str(p) for p in paths} == {"courses/current/course",
                                       "courses/history/course"}


def test_enumerate_text_paths_includes_bare():
    paths = enumerate_paths(SCHOOL.school, "cno",
                            PathRequest(PathKind.TEXT, None))
    assert str(paths[0]) == "text()"


def test_enumerate_respects_length_cap():
    paths = enumerate_paths(SCHOOL.school, "school",
                            PathRequest(PathKind.AND, "cno"), max_len=2)
    assert paths == []


def test_enumerate_or_paths_exclude_stars():
    paths = enumerate_paths(SCHOOL.school, "school",
                            PathRequest(PathKind.OR, "regular"), max_len=8)
    # regular sits below course, which requires a star edge — no OR
    # path can reach it from school.
    assert paths == []


def test_prefix_free_assign_basic():
    requests = [PathRequest(PathKind.AND, "cno"),
                PathRequest(PathKind.AND, "title"),
                PathRequest(PathKind.AND, "category")]
    paths = prefix_free_assign(SCHOOL.school, "course", requests)
    assert paths is not None
    for i, p1 in enumerate(paths):
        for p2 in paths[i + 1:]:
            assert not p1.is_prefix_of(p2) and not p2.is_prefix_of(p1)


def test_prefix_free_assign_conflicting_targets():
    """Two requests to the same end need positions or distinct routes."""
    from repro.schema import load_schema

    target = load_schema("x -> y, y\ny -> str")
    requests = [PathRequest(PathKind.AND, "y"),
                PathRequest(PathKind.AND, "y")]
    paths = prefix_free_assign(target, "x", requests)
    assert paths is not None
    assert {str(p) for p in paths} == {"y[position()=1]", "y[position()=2]"}


def test_prefix_free_assign_impossible():
    from repro.schema import load_schema

    target = load_schema("x -> y\ny -> str")
    requests = [PathRequest(PathKind.AND, "y"),
                PathRequest(PathKind.AND, "y")]
    assert prefix_free_assign(target, "x", requests) is None


# -- local embeddings ---------------------------------------------------------

def test_local_embedder_reproduces_sigma1_paths():
    att = SimilarityMatrix.permissive()
    embedder = LocalEmbedder(SCHOOL.classes, SCHOOL.school, att)
    truth = SCHOOL.sigma1.lam
    mapping = embedder.find("class", "course", truth)
    assert mapping is not None
    assert str(mapping.paths[("class", "title", 1)]) == \
        "basic/class/semester[position()=1]/title"


def test_local_embedder_feasibility_filter():
    att = SimilarityMatrix.permissive()
    embedder = LocalEmbedder(SCHOOL.classes, SCHOOL.school, att)
    assert embedder.feasible("class", "course")
    assert not embedder.feasible("class", "gpa")   # str type: no children
    assert not embedder.feasible("db", "cno")


def test_local_embedder_respects_att_threshold():
    att = SimilarityMatrix()  # all zero: nothing admissible
    embedder = LocalEmbedder(SCHOOL.classes, SCHOOL.school, att)
    assert embedder.find("db", "school", {"db": "school"}) is None


def test_local_embedder_quality_sums_att():
    att = SimilarityMatrix.permissive(0.5)
    embedder = LocalEmbedder(SCHOOL.classes, SCHOOL.school, att)
    mapping = embedder.find("cno", "cno", {"cno": "cno"})
    assert mapping is not None
    assert mapping.quality == pytest.approx(0.5)


def test_find_all_returns_alternatives():
    att = SimilarityMatrix.permissive()
    embedder = LocalEmbedder(SCHOOL.classes, SCHOOL.school, att)
    mappings = embedder.find_all("type", {}, rng=None, limit=4)
    assert len(mappings) >= 1
    assert all(m.source_type == "type" for m in mappings)


# -- assembly strategies ---------------------------------------------------------

@pytest.mark.parametrize("assemble", [assemble_random, assemble_quality,
                                      assemble_indepset])
def test_assembly_strategies_solve_school(assemble):
    att = SimilarityMatrix.permissive()
    embedding = assemble(SCHOOL.classes, SCHOOL.school, att, seed=7,
                         restarts=30)
    assert embedding is not None
    assert embedding.is_valid(att)


@pytest.mark.parametrize("method", ["random", "quality", "indepset"])
def test_methods_on_noisy_expansion(method):
    expansion = expand_schema(school_example().classes, seed=4)
    att = noisy_att(expansion, 0.6, seed=9)
    result = find_embedding(expansion.source, expansion.target, att,
                            method=method, seed=1, restarts=25)
    assert result.found
    assert result.embedding is not None
    assert result.embedding.is_valid(att)


def test_search_returns_quality_and_time():
    att = SimilarityMatrix.permissive()
    result = find_embedding(SCHOOL.students, SCHOOL.school, att, seed=2)
    assert result.found
    assert result.seconds >= 0.0
    assert result.quality == pytest.approx(len(result.embedding.lam))


def test_search_unknown_method_rejected():
    with pytest.raises(ValueError):
        find_embedding(SCHOOL.classes, SCHOOL.school, method="magic")


def test_search_failure_reported():
    """A target that cannot host the source at all."""
    from repro.schema import load_schema

    source = load_schema("a -> b*\nb -> str")
    target = load_schema("x -> y\ny -> str")   # no star anywhere
    result = find_embedding(source, target, method="auto", restarts=5)
    assert not result.found
    assert result.embedding is None


def test_found_embeddings_are_information_preserving():
    """End-to-end: search → InstMap → inverse on random instances."""
    from repro.core.instmap import InstMap
    from repro.core.inverse import invert
    from repro.dtd.generate import random_instance
    from repro.xtree.nodes import tree_equal

    att = SimilarityMatrix.permissive()
    result = find_embedding(SCHOOL.classes, SCHOOL.school, att, seed=5)
    assert result.found and result.embedding is not None
    instmap = InstMap(result.embedding)
    for seed in range(4):
        instance = random_instance(SCHOOL.classes, seed=seed, max_depth=7)
        mapped = instmap.apply(instance)
        assert tree_equal(invert(result.embedding, mapped.tree), instance)
