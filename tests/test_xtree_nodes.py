"""Unit tests: XML tree model, node ids, and the paper's tree equality."""

import pytest

from repro.xtree.nodes import (
    ElementNode,
    TextNode,
    copy_tree,
    document_order,
    dom,
    elem,
    tree_equal,
    tree_size,
)


def test_elem_builder_nests_children_and_text():
    tree = elem("class", elem("cno", "CS331"), elem("title", "DB"))
    assert tree.tag == "class"
    assert [c.tag for c in tree.element_children()] == ["cno", "title"]
    assert tree.element_children()[0].child_text() == "CS331"


def test_node_ids_are_unique_across_a_tree():
    tree = elem("r", elem("a", "x"), elem("a", "x"))
    ids = [node.node_id for node in tree.iter()]
    assert len(ids) == len(set(ids)) == 5  # r, a, text, a, text


def test_text_nodes_carry_ids_too():
    """Section 2.1: "a text node is also associated with a node id"."""
    node = TextNode("hello")
    assert isinstance(node.node_id, int)
    assert node.is_text()


def test_parent_pointers_and_root():
    tree = elem("r", elem("a", elem("b")))
    b = tree.element_children()[0].element_children()[0]
    assert b.root() is tree
    assert [a.tag for a in b.ancestors()] == ["a", "r"]
    assert b.depth() == 2


def test_tree_equal_ignores_node_ids():
    t1 = elem("r", elem("a", "x"))
    t2 = elem("r", elem("a", "x"))
    assert t1.node_id != t2.node_id
    assert tree_equal(t1, t2)


def test_tree_equal_respects_order():
    t1 = elem("r", elem("a"), elem("b"))
    t2 = elem("r", elem("b"), elem("a"))
    assert not tree_equal(t1, t2)


def test_tree_equal_respects_string_values():
    assert not tree_equal(elem("a", "x"), elem("a", "y"))


def test_tree_equal_respects_arity():
    assert not tree_equal(elem("r", elem("a")), elem("r"))


def test_tree_equal_element_vs_text():
    assert not tree_equal(elem("r", elem("x")), elem("r", "x"))


def test_tree_size_counts_all_nodes():
    assert tree_size(elem("r", elem("a", "x"), elem("b"))) == 4


def test_document_order_is_preorder():
    tree = elem("r", elem("a", elem("b")), elem("c"))
    order = document_order(tree)
    a = tree.element_children()[0]
    b = a.element_children()[0]
    c = tree.element_children()[1]
    assert order[tree.node_id] < order[a.node_id] < order[b.node_id] \
        < order[c.node_id]


def test_copy_tree_fresh_ids_by_default():
    tree = elem("r", elem("a", "x"))
    copy = copy_tree(tree)
    assert tree_equal(copy, tree)
    assert dom(copy).isdisjoint(dom(tree))


def test_copy_tree_can_keep_ids():
    tree = elem("r", elem("a"))
    copy = copy_tree(tree, fresh_ids=False)
    assert dom(copy) == dom(tree)


def test_replace_child_keeps_position():
    tree = elem("r", elem("a"), elem("b"), elem("c"))
    new = ElementNode("x")
    tree.replace_child(tree.children[1], new)
    assert [c.tag for c in tree.element_children()] == ["a", "x", "c"]
    assert new.parent is tree


def test_children_tagged_filters_and_orders():
    tree = elem("r", elem("a", "1"), elem("b"), elem("a", "2"))
    tagged = tree.children_tagged("a")
    assert [c.child_text() for c in tagged] == ["1", "2"]


def test_find_by_id():
    tree = elem("r", elem("a"))
    child = tree.element_children()[0]
    assert tree.find_by_id(child.node_id) is child
    assert tree.find_by_id(-1) is None


def test_iter_elements_skips_text():
    tree = elem("r", elem("a", "x"))
    assert [n.tag for n in tree.iter_elements()] == ["r", "a"]
