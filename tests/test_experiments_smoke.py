"""Smoke tests for the experiment drivers and the table renderer."""

from repro.experiments.accuracy import run_accuracy
from repro.experiments.complexity import (
    run_instmap_growth,
    run_inverse_growth,
    run_translation_growth,
)
from repro.experiments.report import format_table
from repro.experiments.scalability import run_scalability


def test_format_table_alignment():
    rows = [{"a": 1, "bee": "x"}, {"a": 22, "bee": "yy"}]
    rendered = format_table(rows, title="t")
    lines = rendered.splitlines()
    assert lines[0] == "t"
    assert len({len(line) for line in lines[1:]}) == 1  # aligned


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


def test_format_table_column_selection():
    rendered = format_table([{"a": 1, "b": 2}], columns=["b"])
    assert "a" not in rendered.splitlines()[0]


def test_accuracy_driver_minimal():
    rows = run_accuracy(schemas=("parts",), noises=(0.0,),
                        methods=("quality",), trials=1, seed=5)
    assert len(rows) == 1
    assert rows[0].success_rate == 1.0
    assert rows[0].lambda_accuracy == 1.0
    assert rows[0].as_dict()["success"] == "100%"


def test_scalability_driver_minimal():
    rows = run_scalability(sizes=(8,), methods=("quality",), seed=1)
    assert len(rows) == 1 and rows[0].success
    assert rows[0].target_types > rows[0].source_types


def test_instmap_growth_rows():
    rows = run_instmap_growth(sizes=(50, 200), seed=2)
    assert len(rows) == 2
    assert all(row["|T2|"] >= row["|T1|"] for row in rows)


def test_inverse_growth_rows():
    rows = run_inverse_growth(sizes=(50,), seed=2,
                              include_query_driven=False)
    assert len(rows) == 1 and "query-driven-sec" not in rows[0]


def test_translation_growth_within_bounds():
    rows = run_translation_growth(counts=(4,), seed=1, max_steps=5)
    assert rows and all(row["within-bound"] for row in rows)
