"""Cache correctness of the compilation engine (repro.engine).

The contract under test:

* equal inputs hit the caches (observed via the Engine's stats
  counters), including *rebuilt* equal-content schemas/embeddings;
* changed content — a rebuilt schema with a different production, an
  embedding with a different path — misses and recompiles;
* served results are identical to the uncached per-call path for
  mapping, translation, and inversion;
* the classic one-shot API delegates to the default engine without
  changing signatures or behaviour.
"""

from __future__ import annotations

import pytest

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.embedding import build_embedding
from repro.core.instmap import InstMap, apply_embedding
from repro.core.inverse import invert, run_invert
from repro.core.similarity import SimilarityMatrix
from repro.core.translate import Translator, translate_query
from repro.dtd.generate import InstanceGenerator
from repro.dtd.model import Star, make_dtd
from repro.schema import load_schema
from repro.engine import Engine, EngineConfig, default_engine, \
    set_default_engine
from repro.matching.search import find_embedding
from repro.workloads.library import school_example
from repro.xpath.parser import parse_xr
from repro.xpath.paths import XRPath
from repro.xtree.nodes import tree_equal


@pytest.fixture()
def school():
    return school_example()


@pytest.fixture()
def engine():
    return Engine()


def _documents(source, count=4):
    return [InstanceGenerator(source, seed=seed, max_depth=10,
                              star_mean=2.0).generate()
            for seed in range(count)]


# -- fingerprints / hashability ----------------------------------------------

def test_dtd_hashable_and_fingerprint_stable(school):
    assert isinstance(hash(school.classes), int)
    assert school.classes.fingerprint() == school.classes.fingerprint()
    # Equal content parsed twice -> equal fingerprint and hash.
    text = "a -> b, c\nb -> str\nc -> d*\nd -> str"
    first, second = load_schema(text), load_schema(text)
    assert first.fingerprint() == second.fingerprint()
    assert hash(first) == hash(second)
    # The display name is not content.
    renamed = load_schema(text, name="other")
    assert renamed.fingerprint() == first.fingerprint()
    # A changed production is a different fingerprint.
    changed = first.with_production("c", Star("b"))
    assert changed.fingerprint() != first.fingerprint()


def test_embedding_hashable_and_fingerprint_tracks_content(school):
    sigma = school.sigma1
    assert isinstance(hash(sigma), int)
    rebuilt = build_embedding(sigma.source, sigma.target, dict(sigma.lam),
                              dict(sigma.paths))
    assert rebuilt.fingerprint() == sigma.fingerprint()
    assert hash(rebuilt) == hash(sigma)
    # Change one path -> new fingerprint.
    (key, path), = list(sigma.paths.items())[:1]
    tweaked = dict(sigma.paths)
    tweaked[key] = XRPath.parse(str(path) + "/bogus") \
        if not path.text else XRPath.parse("bogus")
    different = build_embedding(sigma.source, sigma.target, dict(sigma.lam),
                                tweaked)
    assert different.fingerprint() != sigma.fingerprint()


def test_hash_consistent_with_eq_across_definition_order():
    # dict equality ignores insertion order, so hashing must too
    # (fingerprints stay order-sensitive: they also key search results).
    one = make_dtd("r", r="a, b", a="str", b="str")
    elements = {"b": one.elements["b"], "r": one.elements["r"],
                "a": one.elements["a"]}
    from repro.dtd.model import DTD
    two = DTD(elements, "r")
    assert one == two
    assert hash(one) == hash(two)
    assert len({one, two}) == 1


def test_invalid_embedding_raises_embedding_error_via_engine(engine):
    source = make_dtd("a", a="b", b="str")
    target = make_dtd("x", x="y", y="str", name="t")
    broken = build_embedding(source, target, {"a": "x", "b": "y"},
                             {("a", "b"): "nonexistent",
                              ("b", "str"): "text()"})
    from repro.core.errors import EmbeddingError
    from repro.xtree.nodes import ElementNode, TextNode
    doc = ElementNode("a")
    child = ElementNode("b")
    child.append(TextNode("v"))
    doc.append(child)
    # The aggregated validity report, not a low-level classification
    # error from artifact construction.
    with pytest.raises(EmbeddingError):
        engine.apply_embedding(broken, doc)


def test_xrpath_hashable_fingerprint():
    one = XRPath.parse("a/b[position()=2]/text()")
    two = XRPath.parse("a/b[position()=2]/text()")
    assert one == two and hash(one) == hash(two)
    assert one.fingerprint() == two.fingerprint()
    assert one.fingerprint() != XRPath.parse("a/b/text()").fingerprint()


def test_similarity_permissive_shared_and_frozen():
    assert SimilarityMatrix.permissive() is SimilarityMatrix.permissive()
    with pytest.raises(ValueError):
        SimilarityMatrix.permissive().set("a", "b", 0.5)
    clone = SimilarityMatrix.permissive().copy()
    clone.set("a", "b", 0.5)  # copies are mutable
    assert clone.fingerprint() != SimilarityMatrix.permissive().fingerprint()


def test_similarity_fingerprint_invalidated_by_set():
    att = SimilarityMatrix()
    before = att.fingerprint()
    att.set("a", "b", 0.5)
    assert att.fingerprint() != before


# -- schema cache --------------------------------------------------------------

def test_compile_schema_hits_for_equal_content(engine, school):
    first = engine.compile_schema(school.school)
    assert engine.schema_stats.misses == 1
    again = engine.compile_schema(school.school)
    assert again is first
    assert engine.schema_stats.hits == 1
    # A rebuilt equal schema (fresh object) also hits.
    rebuilt_text = "a -> b*\nb -> str"
    one = engine.compile_schema(load_schema(rebuilt_text))
    two = engine.compile_schema(load_schema(rebuilt_text))
    assert one is two


def test_compile_schema_misses_for_changed_content(engine):
    base = make_dtd("r", r="x*", x="str")
    compiled = engine.compile_schema(base)
    mutated = base.with_production("x", Star("x"))
    assert engine.compile_schema(mutated) is not compiled
    assert engine.schema_stats.misses == 2


def test_compiled_schema_views(engine, school):
    compiled = engine.compile_schema(school.classes)
    assert set(compiled.edges) == set(school.classes.types)
    assert compiled.reachable == school.classes.reachable_types()
    assert compiled.mindef.instance(school.classes.root) is not None


# -- embedding cache ------------------------------------------------------------

def test_compile_embedding_hits_and_validates_once(engine, school):
    sigma = school.sigma1
    first = engine.compile_embedding(sigma)
    assert engine.embedding_stats.misses == 1
    assert not first.validated
    assert engine.compile_embedding(sigma) is first
    assert engine.embedding_stats.hits == 1
    engine.apply_embedding(sigma, _documents(school.classes, 1)[0])
    assert first.validated


def test_compile_embedding_rebuilt_equal_hits(engine, school):
    sigma = school.sigma1
    first = engine.compile_embedding(sigma)
    rebuilt = build_embedding(sigma.source, sigma.target, dict(sigma.lam),
                              dict(sigma.paths))
    assert engine.compile_embedding(rebuilt) is first


def test_compile_embedding_changed_content_misses(engine):
    source = make_dtd("a", a="b*", b="str")
    target = make_dtd("x", x="y*", y="wrap", wrap="str", name="t")
    sigma = build_embedding(source, target, {"a": "x", "b": "y"},
                            {("a", "b"): "y", ("b", "str"): "wrap/text()"})
    first = engine.compile_embedding(sigma)
    other = build_embedding(source, target, {"a": "x", "b": "y"},
                            {("a", "b"): "y",
                             ("b", "str"): "wrap/text()"})
    assert engine.compile_embedding(other) is first  # equal content
    # Now change the target schema underneath: different embedding.
    target2 = make_dtd("x", x="y*", y="wrap", wrap="str", z="str", name="t")
    changed = build_embedding(source, target2, {"a": "x", "b": "y"},
                              {("a", "b"): "y", ("b", "str"): "wrap/text()"})
    assert engine.compile_embedding(changed) is not first
    assert engine.embedding_stats.misses == 2


# -- served results == uncached results -----------------------------------------

def test_cached_mapping_identical(engine, school):
    sigma = school.sigma1
    for document in _documents(school.classes):
        uncached = InstMap(sigma).apply(document)
        served = engine.apply_embedding(sigma, document)
        again = engine.apply_embedding(sigma, document)
        assert tree_equal(served.tree, uncached.tree)
        assert tree_equal(again.tree, uncached.tree)
        # idM agrees modulo fresh node identities: same source ids.
        assert set(served.idM.values()) == set(uncached.idM.values())


def test_cached_translation_identical(engine, school):
    sigma = school.sigma1
    document = _documents(school.classes, 1)[0]
    mapped = engine.apply_embedding(sigma, document).tree
    for query_text in ("class", "class/cno/text()",
                       "class/type/regular/prereq/class",
                       "class[type/project]"):
        query = parse_xr(query_text)
        uncached = Translator(sigma).translate(query)
        served = engine.translate_query(sigma, query)
        served_again = engine.translate_query(sigma, query_text)
        assert evaluate_anfa_set(served, mapped) == \
            evaluate_anfa_set(uncached, mapped)
        assert evaluate_anfa_set(served_again, mapped) == \
            evaluate_anfa_set(uncached, mapped)


def test_translation_cache_counters(engine, school):
    sigma = school.sigma1
    engine.translate_query(sigma, "class/title")
    assert engine.translation_stats.misses == 1
    engine.translate_query(sigma, "class/title")
    assert engine.translation_stats.hits == 1
    engine.translate_query(sigma, "class/virtual")  # different query
    assert engine.translation_stats.misses == 2


def test_cached_anfa_copy_is_independent(engine, school):
    served = engine.translate_query(school.sigma1, "class/cno/text()")
    private = served.copy()
    private.set_final(private.new_state(), "extra")
    assert private.size() > served.size()
    # The cached automaton is untouched.
    assert engine.translate_query(school.sigma1,
                                  "class/cno/text()").size() == served.size()


def test_cached_inversion_identical(engine, school):
    sigma = school.sigma2
    for document in _documents(school.students, 3):
        mapped = engine.apply_embedding(sigma, document)
        uncached = run_invert(sigma, mapped.tree)
        served = engine.invert(sigma, mapped.tree)
        assert tree_equal(uncached, document)
        assert tree_equal(served, document)


# -- search cache ---------------------------------------------------------------

def test_find_embedding_search_cache(engine, school):
    att = SimilarityMatrix.permissive()
    first = engine.find_embedding(school.classes, school.school, att)
    assert first.found
    assert engine.search_stats.misses == 1
    second = engine.find_embedding(school.classes, school.school, att)
    assert second is first
    assert engine.search_stats.hits == 1
    # Different parameters are a different key.
    engine.find_embedding(school.classes, school.school, att, seed=1)
    assert engine.search_stats.misses == 2


# -- default-engine delegation ---------------------------------------------------

def test_one_shot_api_delegates_to_default_engine(school):
    previous = set_default_engine(Engine())
    try:
        sigma = school.sigma1
        document = _documents(school.classes, 1)[0]
        mapped = apply_embedding(sigma, document)
        mapped_again = apply_embedding(sigma, document)
        assert tree_equal(mapped.tree, mapped_again.tree)
        assert tree_equal(invert(sigma, mapped.tree), document)
        anfa = translate_query(sigma, parse_xr("class/title"))
        assert not anfa.is_fail()
        stats = default_engine().stats()
        assert stats["embeddings"]["hits"] >= 1
        result = find_embedding(school.classes, school.school)
        assert result.found
        # The classic wrapper bypasses the search-result cache (per-call
        # timing semantics) but still compiles the target through the
        # default engine's schema cache.
        assert default_engine().search_stats.lookups == 0
        assert default_engine().schema_stats.lookups >= 1
    finally:
        set_default_engine(previous)


# -- LRU bounds -----------------------------------------------------------------

def test_schema_cache_eviction():
    engine = Engine(EngineConfig(schema_cache=2))
    schemas = [make_dtd("r", r="x*", x="str", **{f"t{i}": "str"})
               for i in range(3)]
    for schema in schemas:
        engine.compile_schema(schema)
    assert engine.schema_stats.evictions == 1
    # The oldest schema was evicted: compiling it again misses.
    engine.compile_schema(schemas[0])
    assert engine.schema_stats.misses == 4


def test_engine_clear_drops_artifacts(engine, school):
    engine.compile_schema(school.classes)
    engine.clear()
    engine.compile_schema(school.classes)
    assert engine.schema_stats.misses == 2
