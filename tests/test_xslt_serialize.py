"""XSLT text rendering (the Example 4.5/4.6 presentation layer)."""

from repro.xpath.paths import XRPath
from repro.xslt.model import (
    OutApply,
    OutElem,
    OutText,
    Pattern,
    Select,
    Stylesheet,
    TemplateRule,
)
from repro.xslt.serialize import stylesheet_to_xslt


def _render(rule) -> str:
    sheet = Stylesheet()
    sheet.add(rule)
    return stylesheet_to_xslt(sheet)


def test_header_and_footer():
    rendered = stylesheet_to_xslt(Stylesheet())
    assert rendered.startswith('<xsl:stylesheet version="1.0"')
    assert rendered.endswith("</xsl:stylesheet>")


def test_empty_element_self_closes():
    rendered = _render(TemplateRule(Pattern("a"), [OutElem("b")]))
    assert "<b/>" in rendered


def test_text_only_element_inlines():
    rendered = _render(TemplateRule(
        Pattern("a"), [OutElem("credit", [OutText("#s")])]))
    assert "<credit>#s</credit>" in rendered


def test_apply_templates_with_mode_and_position():
    rule = TemplateRule(
        Pattern("a"),
        [OutElem("x", [OutApply(Select(XRPath.parse("b[position()=2]")),
                                mode="M-a")])])
    rendered = _render(rule)
    assert ('<xsl:apply-templates select="b[position()=2]" mode="M-a"/>'
            in rendered)


def test_qualified_match_pattern():
    rule = TemplateRule(Pattern("category",
                                qualifier=XRPath.parse("mandatory/regular")),
                        [OutElem("type")], mode="inv-type")
    rendered = _render(rule)
    assert ('<xsl:template match="category[mandatory/regular]" '
            'mode="inv-type">' in rendered)


def test_text_pattern_renders():
    from repro.xslt.model import TEXT_PATTERN

    rule = TemplateRule(Pattern(TEXT_PATTERN), [OutText("x")])
    rendered = _render(rule)
    assert '<xsl:template match="text()">' in rendered


def test_escaping_in_literals():
    rule = TemplateRule(Pattern("a"),
                        [OutElem("v", [OutText("a < b & c")])])
    rendered = _render(rule)
    assert "a &lt; b &amp; c" in rendered


def test_nested_structure_indents():
    rule = TemplateRule(Pattern("a"), [
        OutElem("outer", [OutElem("inner", [OutApply(Select(None))])])])
    rendered = _render(rule)
    lines = rendered.splitlines()
    outer = next(l for l in lines if "<outer>" in l)
    inner = next(l for l in lines if "<inner>" in l)
    assert len(inner) - len(inner.lstrip()) > \
        len(outer) - len(outer.lstrip())
