"""Unit tests: XR concrete syntax (Section 2.2)."""

import pytest

from repro.xpath.ast import (
    DescOrSelf,
    EmptyPath,
    Label,
    QAnd,
    QNot,
    QPath,
    QPos,
    QText,
    Qualified,
    Seq,
    Star,
    TextStep,
    Union,
    contains_descendant,
    contains_star,
    lower_descendants,
    query_size,
)
from repro.xpath.parser import XPathParseError, parse_qualifier, parse_xr


def test_single_label():
    assert parse_xr("A") == Label("A")


def test_child_chain():
    assert parse_xr("A/B/C") == Seq(Seq(Label("A"), Label("B")), Label("C"))


def test_empty_path_dot():
    assert parse_xr(".") == EmptyPath()


def test_text_tail():
    assert parse_xr("A/text()") == Seq(Label("A"), TextStep())


def test_union_both_spellings():
    assert parse_xr("A | B") == Union(Label("A"), Label("B"))
    assert parse_xr("A ∪ B") == Union(Label("A"), Label("B"))


def test_star_postfix():
    assert parse_xr("(A/B)*") == Star(Seq(Label("A"), Label("B")))
    assert parse_xr("A*") == Star(Label("A"))


def test_descendant_or_self():
    expr = parse_xr("//B")
    assert expr == Seq(DescOrSelf(), Label("B"))
    assert contains_descendant(expr)


def test_descendant_infix():
    expr = parse_xr("A//B")
    assert expr == Seq(Label("A"), Seq(DescOrSelf(), Label("B")))


def test_position_qualifier():
    assert parse_xr("A[position()=2]") == Qualified(Label("A"), QPos(2))


def test_text_equality_qualifier():
    expr = parse_xr("A[B/text()='x']")
    assert expr == Qualified(Label("A"),
                             QText(Seq(Label("B"), TextStep()), "x"))


def test_boolean_qualifiers():
    expr = parse_xr("A[not(B) and position()=1]")
    assert expr == Qualified(Label("A"),
                             QAnd(QNot(QPath(Label("B"))), QPos(1)))


def test_nested_boolean_parentheses():
    expr = parse_xr("A[(B or C) and not(D)]")
    assert isinstance(expr, Qualified)
    assert isinstance(expr.qual, QAnd)


def test_parenthesised_path_qualifier():
    expr = parse_xr("A[(B/C)]")
    assert expr == Qualified(Label("A"), QPath(Seq(Label("B"), Label("C"))))


def test_example_4_7_query_parses():
    query = parse_xr(
        "courses/current/course[basic/cno/text()='CS331']/"
        "(category/mandatory/regular/required/prereq/course)*")
    assert contains_star(query)
    assert query_size(query) > 10


def test_example_4_8_query_parses():
    query = parse_xr(
        "class[cno/text()='CS331']/(type/regular/prereq/class)*")
    assert contains_star(query)


def test_roundtrip_through_str():
    for source in ["A/B[C]", "(A | B)*/text()", "A[position()=3]",
                   "A[not(B/text()='v')]", "."]:
        expr = parse_xr(source)
        assert parse_xr(str(expr)) == expr


def test_lower_descendants():
    lowered = lower_descendants(parse_xr("//B"), ["A", "B"])
    assert not contains_descendant(lowered)
    assert contains_star(lowered)


def test_parse_qualifier_entry_point():
    assert parse_qualifier("position()=2") == QPos(2)
    assert parse_qualifier("A and B") == QAnd(QPath(Label("A")),
                                              QPath(Label("B")))


def test_errors():
    for bad in ["", "A/", "A[", "A]", "A[position()=]", "A | ", "(A"]:
        with pytest.raises(XPathParseError):
            parse_xr(bad)


def test_query_size_counts_nodes():
    assert query_size(parse_xr("A")) == 1
    assert query_size(parse_xr("A/B")) == 3
    assert query_size(parse_xr("A[B]")) > 3
