"""Unit tests: instance conformance (the Section 2.1 definition)."""

import pytest

from repro.schema import load_schema
from repro.dtd.validate import ConformanceError, conforms, validate
from repro.xtree.nodes import elem
from repro.xtree.parser import parse_xml

DTD = load_schema("""
    db -> rec*
    rec -> k, v, opt
    k -> str
    v -> str
    opt -> flag + eps
    flag -> eps
""")


def _doc(body: str):
    return parse_xml(body)


def test_conforming_document():
    doc = _doc("<db><rec><k>a</k><v>b</v><opt><flag/></opt></rec></db>")
    validate(doc, DTD)
    assert conforms(doc, DTD)


def test_optional_alternative_may_be_absent():
    doc = _doc("<db><rec><k>a</k><v>b</v><opt/></rec></db>")
    assert conforms(doc, DTD)


def test_wrong_root():
    assert not conforms(_doc("<rec/>"), DTD)


def test_unknown_element():
    doc = _doc("<db><mystery/></db>")
    with pytest.raises(ConformanceError) as err:
        validate(doc, DTD)
    assert "mystery" in str(err.value)


def test_star_rejects_foreign_children():
    doc = _doc("<db><k>a</k></db>")
    assert not conforms(doc, DTD)


def test_concat_order_matters():
    doc = _doc("<db><rec><v>b</v><k>a</k><opt/></rec></db>")
    assert not conforms(doc, DTD)


def test_concat_missing_child():
    doc = _doc("<db><rec><k>a</k><v>b</v></rec></db>")
    assert not conforms(doc, DTD)


def test_str_accepts_empty_element_as_empty_string():
    # "<k></k>" is the empty string value: the XML parser cannot even
    # represent an explicit empty text run, so P(k) = str accepts it.
    doc = elem("db", elem("rec", elem("k"), elem("v", "b"), elem("opt")))
    assert conforms(doc, DTD)
    assert conforms(_doc("<db><rec><k></k><v>b</v><opt/></rec></db>"), DTD)


def test_str_rejects_multiple_text_nodes():
    from repro.xtree.nodes import TextNode

    doc = elem("db", elem("rec", elem("k", "a"), elem("v", "b"),
                          elem("opt")))
    doc.children[0].children[0].append(TextNode("second"))
    assert not conforms(doc, DTD)


def test_str_rejects_element_content():
    doc = _doc("<db><rec><k><v>no</v></k><v>b</v><opt/></rec></db>")
    assert not conforms(doc, DTD)


def test_empty_production_rejects_children():
    doc = _doc("<db><rec><k>a</k><v>b</v><opt><flag><k>x</k></flag>"
               "</opt></rec></db>")
    assert not conforms(doc, DTD)


def test_disjunction_rejects_two_children():
    dtd = load_schema("a -> b + c\nb -> eps\nc -> eps")
    doc = elem("a", elem("b"), elem("c"))
    assert not conforms(doc, dtd)


def test_element_only_content_rejects_text():
    doc = elem("db", elem("rec"))
    doc.children[0].append(elem("k", "a"))
    from repro.xtree.nodes import TextNode

    doc.children[0].append(TextNode("stray"))
    assert not conforms(doc, DTD)


def test_star_accepts_many():
    body = "".join("<rec><k>a</k><v>b</v><opt/></rec>" for _ in range(5))
    assert conforms(_doc(f"<db>{body}</db>"), DTD)
