"""The parallel batch runner: order, identity with serial runs, worker
warm starts, per-worker stats aggregation, and corpus streaming.

``jobs=2`` is enough to cross the process boundary; identity with the
``jobs=1`` in-process path is the property every assertion leans on.
"""

from __future__ import annotations

import json

import pytest

from repro.anfa.evaluate import evaluate_anfa_set
from repro.dtd.generate import InstanceGenerator
from repro.engine import (
    CorpusDocument,
    CorpusError,
    Engine,
    ParallelRunner,
    iter_corpus,
    write_ndjson,
)
from repro.xtree.nodes import tree_equal
from repro.xtree.serialize import to_string


@pytest.fixture(scope="module")
def sigma(school):
    return school.sigma1


def _documents(school, count=12):
    return [InstanceGenerator(school.classes, seed=seed, max_depth=8,
                              star_mean=1.5).generate()
            for seed in range(count)]


def _corpus(school, count=12):
    return [CorpusDocument(f"doc{seed:03d}.xml", to_string(document))
            for seed, document in enumerate(_documents(school, count))]


# -- corpus I/O ---------------------------------------------------------------

def test_iter_corpus_directory_sorted(tmp_path, school):
    for document in _corpus(school, 5):
        (tmp_path / document.name).write_text(document.text)
    (tmp_path / "notes.txt").write_text("ignored")
    names = [d.name for d in iter_corpus(tmp_path)]
    assert names == sorted(names) and len(names) == 5


def test_iter_corpus_ndjson_roundtrip(tmp_path, school):
    corpus = _corpus(school, 5)
    path = tmp_path / "corpus.ndjson"
    assert write_ndjson(corpus, path) == 5
    assert [(d.name, d.text) for d in iter_corpus(path)] == \
        [(d.name, d.text) for d in corpus]


def test_iter_corpus_ndjson_bare_strings(tmp_path):
    path = tmp_path / "c.jsonl"
    path.write_text(json.dumps("<a/>") + "\n\n" + json.dumps("<b/>") + "\n")
    docs = list(iter_corpus(path))
    assert [d.text for d in docs] == ["<a/>", "<b/>"]
    assert docs[0].name == "c-1"


def test_iter_corpus_errors(tmp_path):
    with pytest.raises(CorpusError):
        list(iter_corpus(tmp_path / "missing.xml"))
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(CorpusError):
        list(iter_corpus(empty))
    bad = tmp_path / "bad.ndjson"
    bad.write_text("{not json\n")
    with pytest.raises(CorpusError):
        list(iter_corpus(bad))
    bad_row = tmp_path / "row.ndjson"
    bad_row.write_text(json.dumps({"name": "x"}) + "\n")
    with pytest.raises(CorpusError):
        list(iter_corpus(bad_row))


# -- parallel identity --------------------------------------------------------

def test_map_documents_matches_serial_engine(school, sigma):
    documents = _documents(school)
    engine = Engine()
    baseline = [engine.apply_embedding(sigma, d) for d in documents]
    runner = ParallelRunner(jobs=2, chunk_size=3)
    results = runner.map_documents(sigma, documents)
    assert len(results) == len(documents)
    for fresh, served in zip(baseline, results):
        assert tree_equal(fresh.tree, served.tree)
        # idM survives pickling: same source ids, injective per result.
        assert set(served.idM.values()) == set(fresh.idM.values())
        assert served.source_to_target == {
            s: t for t, s in served.idM.items()}
    report = runner.last_report
    assert report.jobs == 2 and report.items == len(documents)
    assert report.chunks == 4


def test_map_corpus_outputs_identical_across_job_counts(tmp_path, school,
                                                        sigma):
    corpus = _corpus(school)
    store = tmp_path / "store"
    serial = ParallelRunner(jobs=1, store=store, chunk_size=3)
    baseline = serial.map_corpus(sigma, iter(corpus))
    parallel = ParallelRunner(jobs=2, store=store, chunk_size=3)
    outcomes = parallel.map_corpus(sigma, iter(corpus))
    assert [o.name for o in outcomes] == [d.name for d in corpus]
    assert all(o.ok for o in outcomes)
    assert [o.output for o in outcomes] == [o.output for o in baseline]
    # Workers warm-started from the store: zero compile misses.
    for report in (serial.last_report, parallel.last_report):
        assert report.stats["schemas"]["misses"] == 0
        assert report.stats["embeddings"]["misses"] == 0
        assert report.stats["embeddings"]["hits"] == len(corpus)


def test_map_corpus_streams_from_ndjson(tmp_path, school, sigma):
    corpus = _corpus(school, 6)
    path = tmp_path / "corpus.ndjson"
    write_ndjson(corpus, path)
    outcomes = ParallelRunner(jobs=2, chunk_size=2).map_corpus(sigma, path)
    baseline = ParallelRunner(jobs=1).map_corpus(sigma, iter(corpus))
    assert [o.output for o in outcomes] == [o.output for o in baseline]


def test_map_corpus_isolates_bad_documents(school, sigma):
    corpus = _corpus(school, 4)
    corpus.insert(2, CorpusDocument("bad-name.xml", "<1abc></1abc>"))
    corpus.insert(4, CorpusDocument("bad-entity.xml", "<db>&#xZZ;</db>"))
    outcomes = ParallelRunner(jobs=2, chunk_size=2).map_corpus(
        sigma, iter(corpus))
    assert [o.name for o in outcomes] == [d.name for d in corpus]
    failed = {o.name: o.output for o in outcomes if not o.ok}
    assert set(failed) == {"bad-name.xml", "bad-entity.xml"}
    # Failures carry the parse error, and never a bare ValueError repr.
    assert "XMLParseError" in failed["bad-name.xml"]
    assert sum(o.ok for o in outcomes) == 4


def test_translate_queries_matches_serial(school, sigma):
    queries = ["class/cno/text()", "class/title", "class[type/project]",
               "class/cno/text()"] * 2
    document = _documents(school, 1)[0]
    probe = Engine().apply_embedding(sigma, document).tree
    serial = ParallelRunner(jobs=1).translate_queries(sigma, queries)
    parallel = ParallelRunner(jobs=2, chunk_size=3).translate_queries(
        sigma, queries)
    assert len(parallel) == len(queries)
    for fresh, served in zip(serial, parallel):
        assert evaluate_anfa_set(served, probe) == \
            evaluate_anfa_set(fresh, probe)


def test_translate_outcomes_isolates_bad_queries(sigma):
    outcomes = ParallelRunner(jobs=2, chunk_size=2).translate_outcomes(
        sigma, ["class/cno/text()", "class[", "class/title"])
    assert [o.ok for o in outcomes] == [True, False, True]
    assert outcomes[1].error


def test_serial_runner_restores_worker_state(school, sigma):
    import repro.engine.parallel as parallel_module

    sentinel = object()
    parallel_module._WORKER = sentinel
    try:
        ParallelRunner(jobs=1).map_documents(sigma, _documents(school, 2))
        assert parallel_module._WORKER is sentinel
    finally:
        parallel_module._WORKER = None


def test_runner_without_store_compiles_once_per_worker(school, sigma):
    runner = ParallelRunner(jobs=2, chunk_size=2)
    runner.map_documents(sigma, _documents(school, 8))
    stats = runner.last_report.stats["embeddings"]
    # No store: each worker pays at most one compile miss, the rest hit.
    assert 1 <= stats["misses"] <= 2
    assert stats["hits"] == 8 - stats["misses"]
