"""E9: generated σd stylesheets agree with InstMap (Section 4.3)."""

import pytest

from repro.core.instmap import InstMap
from repro.dtd.generate import random_instance
from repro.dtd.validate import validate
from repro.workloads.library import SCHEMA_LIBRARY
from repro.workloads.noise import expand_schema
from repro.xslt.engine import apply_stylesheet
from repro.xslt.forward import forward_stylesheet
from repro.xslt.serialize import stylesheet_to_xslt
from repro.xtree.nodes import tree_equal
from repro.xtree.parser import parse_xml


def test_forward_matches_instmap_school(school):
    sheet = forward_stylesheet(school.sigma1)
    instmap = InstMap(school.sigma1)
    for seed in range(6):
        instance = random_instance(school.classes, seed=seed, max_depth=8)
        via_xslt = apply_stylesheet(sheet, instance)
        via_instmap = instmap.apply(instance).tree
        assert tree_equal(via_xslt, via_instmap)


def test_forward_matches_instmap_students(school):
    sheet = forward_stylesheet(school.sigma2)
    instmap = InstMap(school.sigma2)
    for seed in range(6):
        instance = random_instance(school.students, seed=seed)
        assert tree_equal(apply_stylesheet(sheet, instance),
                          instmap.apply(instance).tree)


@pytest.mark.parametrize("name", ["bib", "orders", "genealogy", "parts"])
def test_forward_matches_instmap_expansions(name):
    expansion = expand_schema(SCHEMA_LIBRARY[name](), seed=17)
    sheet = forward_stylesheet(expansion.embedding)
    instmap = InstMap(expansion.embedding)
    for seed in range(3):
        instance = random_instance(expansion.source, seed=seed, max_depth=7)
        assert tree_equal(apply_stylesheet(sheet, instance),
                          instmap.apply(instance).tree)


def test_example_4_6_template_shape(school):
    """The class → course template embeds the mindef padding inline
    (credit, year, term, instructor) and three apply-templates."""
    sheet = forward_stylesheet(school.sigma1)
    rendered = stylesheet_to_xslt(sheet)
    assert '<xsl:template match="class">' in rendered
    assert "<credit>#s</credit>" in rendered
    assert '<xsl:apply-templates select="cno"/>' in rendered
    assert '<xsl:apply-templates select="title"/>' in rendered
    assert '<xsl:apply-templates select="type"/>' in rendered


def test_example_4_6_disjunction_rules(school):
    """Two templates for type: match type[regular] and type[project]."""
    sheet = forward_stylesheet(school.sigma1)
    rendered = stylesheet_to_xslt(sheet)
    assert '<xsl:template match="type[regular]">' in rendered
    assert '<xsl:template match="type[project]">' in rendered
    assert "<mandatory>" in rendered and "<advanced>" in rendered


def test_example_4_6_star_prefix_suffix(school):
    """The db prefix/suffix pair with mode M-db."""
    sheet = forward_stylesheet(school.sigma1)
    rendered = stylesheet_to_xslt(sheet)
    assert '<xsl:apply-templates select="class" mode="M-db"/>' in rendered
    assert '<xsl:template match="class" mode="M-db">' in rendered
    assert '<xsl:apply-templates select="."/>' in rendered


def test_forward_type_safe(school):
    sheet = forward_stylesheet(school.sigma1)
    instance = random_instance(school.classes, seed=3, max_depth=8)
    validate(apply_stylesheet(sheet, instance), school.school)


def test_optional_disjunction_fallback():
    from repro.core.embedding import build_embedding
    from repro.schema import load_schema

    source = load_schema("a -> b + eps\nb -> str")
    target = load_schema("x -> a0pad + y\na0pad -> eps\ny -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y"},
        {("a", "b"): "y", ("b", "str"): "text()"}).check()
    sheet = forward_stylesheet(embedding)
    instmap = InstMap(embedding)
    for body in ["<a><b>v</b></a>", "<a/>"]:
        instance = parse_xml(body)
        assert tree_equal(apply_stylesheet(sheet, instance),
                          instmap.apply(instance).tree)


def test_repeated_children_via_positional_selects():
    from repro.core.embedding import build_embedding
    from repro.schema import load_schema

    source = load_schema("a -> b, b\nb -> str")
    target = load_schema("x -> y, y\ny -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y"},
        {("a", "b", 1): "y[position()=1]", ("a", "b", 2): "y[position()=2]",
         ("b", "str"): "text()"}).check()
    sheet = forward_stylesheet(embedding)
    instance = parse_xml("<a><b>first</b><b>second</b></a>")
    result = apply_stylesheet(sheet, instance)
    values = [y.child_text() for y in result.children_tagged("y")]
    assert values == ["first", "second"]
