"""E11: the Theorem 5.1 reduction, cross-checked against DPLL."""

import pytest

from repro.core.similarity import SimilarityMatrix
from repro.matching.exact import exact_embedding
from repro.matching.reduction import (
    assignment_to_embedding_hint,
    dpll_satisfiable,
    reduction_from_3sat,
)

#: (formula, satisfiable?) — small instances the exact solver can do.
FORMULAS = [
    ([((1, True),)], True),
    ([((1, True),), ((1, False),)], False),
    ([((1, True), (2, True))], True),
    ([((1, True), (2, True)), ((1, False), (2, True)),
      ((2, False), (1, True))], True),
    ([((1, True), (2, True)), ((1, True), (2, False)),
      ((1, False), (2, True)), ((1, False), (2, False))], False),
    ([((1, True), (2, False), (3, True)),
      ((1, False), (2, True), (3, False))], True),
]


@pytest.mark.parametrize("formula,expected", FORMULAS)
def test_dpll(formula, expected):
    model = dpll_satisfiable(formula)
    assert (model is not None) == expected
    if model is not None:
        for clause in formula:
            assert any(model.get(v, False) == p for v, p in clause)


def test_reduction_shapes():
    reduction = reduction_from_3sat(FORMULAS[3][0])
    assert reduction.n_clauses == 3 and reduction.n_vars == 2
    # Both DTDs are nonrecursive and concatenation-only (Theorem 5.1:
    # "remains NP-hard for nonrecursive DTDs defined with
    # concatenation types only").
    assert not reduction.source.is_recursive()
    assert not reduction.target.is_recursive()
    # Clause signatures: Ci has n+i Z children.
    assert reduction.source.production("C1").children == ("Z",) * 4
    assert reduction.source.production("C3").children == ("Z",) * 6
    # Variable widths: Ys has 2n+s W children.
    assert reduction.source.production("Y2").children == ("W",) * 8


@pytest.mark.parametrize("formula,expected", FORMULAS)
def test_satisfiable_iff_embedding_exists(formula, expected):
    """The reduction's correctness, both directions, empirically
    (with the Theorem 5.2-style restricted att; see the module
    docstring of repro.matching.reduction for why the fully
    unrestricted matrix admits pair-stealing shortcuts)."""
    reduction = reduction_from_3sat(formula)
    embedding = exact_embedding(reduction.source, reduction.target,
                                reduction.att,
                                max_len=4, max_paths=64, max_candidates=32,
                                node_budget=400_000)
    assert (embedding is not None) == expected
    if embedding is not None:
        embedding.check(reduction.att)


def test_unrestricted_att_admits_pair_stealing():
    """The reproduction finding: with att(A,B)=1 everywhere, the OCR'd
    gadget is *not* sound — an unsatisfiable formula still embeds via
    Y1 ↦ F1, Y2 ↦ T1 (both onto pair 1), liberating the X2 gadget."""
    formula = [((1, True), (2, True)), ((1, True), (2, False)),
               ((1, False), (2, True)), ((1, False), (2, False))]
    assert dpll_satisfiable(formula) is None
    reduction = reduction_from_3sat(formula)
    embedding = exact_embedding(reduction.source, reduction.target,
                                SimilarityMatrix.permissive(),
                                max_len=4, max_paths=64, max_candidates=32,
                                node_budget=400_000)
    assert embedding is not None  # the documented shortcut
    claimed = {embedding.lam["Y1"], embedding.lam["Y2"]}
    assert claimed.issubset({"T1", "F1"}) or \
        claimed.issubset({"T2", "F2"}) or len(claimed) == 2


def test_satisfying_assignment_yields_embedding_hint():
    formula = FORMULAS[3][0]
    reduction = reduction_from_3sat(formula)
    model = dpll_satisfiable(formula)
    assert model is not None
    lam = assignment_to_embedding_hint(reduction, model)
    # λ uses the negation coding: Ys -> Fs iff xs true.
    for variable, value in model.items():
        assert lam[f"Y{variable}"] == (f"F{variable}" if value
                                       else f"T{variable}")
    # The hinted λ extends to a full valid embedding.
    att = SimilarityMatrix.from_mapping(lam)
    embedding = exact_embedding(reduction.source, reduction.target, att,
                                max_len=4, max_paths=64, max_candidates=4)
    assert embedding is not None
    for source_type, image in lam.items():
        assert embedding.lam[source_type] == image


def test_reduction_rejects_trivial_input():
    with pytest.raises(ValueError):
        reduction_from_3sat([])
