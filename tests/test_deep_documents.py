"""Deep-document regression: ~1000-level documents must map, invert,
parse and serialize without ``RecursionError``.

The seed implementation recursed once per tree level in
``_FragmentBuilder._complete``, ``xtree.serialize._render``,
``xtree.parser._parse_element`` and ``core.inverse._Inverter.rebuild``
— all now explicit-stack iterative.  The fast path
(:mod:`repro.engine.plan`) is iterative by construction; both paths are
exercised here, end to end through :class:`repro.engine.Engine` and the
``/v1/map`` + ``/v1/invert`` HTTP handlers.
"""

from __future__ import annotations

import pytest

from repro.core.instmap import InstMap
from repro.core.inverse import run_invert
from repro.schema import load_schema
from repro.engine import Engine
from repro.core.embedding import build_embedding
from repro.serve import ReproServer, ServeClient
from repro.xtree.nodes import ElementNode, TextNode, tree_equal, tree_size
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

DEPTH = 1000


def _chain_bundle():
    """A recursive source (``node -> node*``) whose instances form
    chains, and a target that wraps every level (so the mapped document
    is even deeper than the source)."""
    source = load_schema("node -> node*", format="compact",
                         name="chain-src")
    target = load_schema("wrap -> inner\ninner -> wrap*",
                         format="compact", root="wrap",
                         name="chain-tgt")
    sigma = build_embedding(source, target, {"node": "wrap"},
                            {("node", "node"): "inner/wrap"})
    return source, target, sigma


def _deep_instance(depth: int) -> ElementNode:
    root = ElementNode("node")
    current = root
    for _ in range(depth - 1):
        child = ElementNode("node")
        current.append(child)
        current = child
    return root


@pytest.fixture(scope="module")
def bundle():
    return _chain_bundle()


def test_deep_document_maps_and_inverts_through_engine(bundle):
    _source, _target, sigma = bundle
    document = _deep_instance(DEPTH)
    engine = Engine()
    result = engine.apply_embedding(sigma, document)
    assert tree_size(result.tree) == 2 * DEPTH  # wrap+inner per level
    recovered = engine.invert(sigma, result.tree)
    assert tree_equal(recovered, document)


def test_deep_document_reference_paths(bundle):
    """The reference (non-compiled) walkers must survive the same depth."""
    _source, _target, sigma = bundle
    document = _deep_instance(DEPTH)
    instmap = InstMap(sigma)
    reference = instmap.apply_reference(document)
    fast = instmap.apply(document)
    assert to_string(reference.tree) == to_string(fast.tree)
    recovered = run_invert(sigma, reference.tree)
    assert tree_equal(recovered, document)


def test_deep_document_serializes_and_reparses(bundle):
    _source, _target, sigma = bundle
    document = _deep_instance(DEPTH)
    engine = Engine()
    mapped = engine.apply_embedding(sigma, document).tree
    for indent in (2, None):
        text = to_string(mapped, indent=indent)
        reparsed = parse_xml(text)
        assert tree_equal(reparsed, mapped)


def test_deep_text_values_survive():
    """A deep document ending in PCDATA keeps its value end to end."""
    source = load_schema("node -> leaf + node\nleaf -> str",
                         format="compact", name="deep-str-src")
    target = load_schema("wrap -> leaf + wrap\nleaf -> str",
                         format="compact", root="wrap",
                         name="deep-str-tgt")
    sigma = build_embedding(
        source, target, {"node": "wrap", "leaf": "leaf"},
        {("node", "node"): "wrap", ("node", "leaf"): "leaf",
         ("leaf", "str"): "text()"})
    root = ElementNode("node")
    current = root
    for _ in range(DEPTH - 1):
        child = ElementNode("node")
        current.append(child)
        current = child
    leaf = ElementNode("leaf")
    leaf.append(TextNode("payload"))
    current.append(leaf)
    engine = Engine()
    mapped = engine.apply_embedding(sigma, root)
    recovered = engine.invert(sigma, mapped.tree)
    assert tree_equal(recovered, root)
    assert "payload" in to_string(mapped.tree, indent=None)


def test_deep_document_through_v1_map_and_invert(bundle, tmp_path):
    _source, _target, sigma = bundle
    engine = Engine()
    engine.compile_embedding(sigma, ensure_valid=True)
    store = tmp_path / "store"
    engine.save_store(store)
    document = _deep_instance(DEPTH)
    xml = to_string(document, indent=None)
    with ReproServer(store=store, port=0) as server:
        client = ServeClient.for_server(server)
        mapped = client.request("POST", "/v1/map", {"xml": xml})
        assert mapped["result"]["ok"], mapped
        mapped_xml = mapped["result"]["output"]
        inverted = client.request("POST", "/v1/invert",
                                  {"xml": mapped_xml})
        assert inverted["result"]["ok"], inverted
        assert tree_equal(parse_xml(inverted["result"]["output"]), document)
