"""Similarity matrices and name matchers (Section 4.1)."""

import pytest

from repro.core.similarity import SimilarityMatrix, name_similarity
from repro.schema import load_schema

SOURCE = load_schema("a -> b, c\nb -> str\nc -> str")
TARGET = load_schema("a -> b, x\nb -> str\nx -> str")


def test_get_set_and_bounds():
    att = SimilarityMatrix()
    att.set("a", "a", 0.5)
    assert att.get("a", "a") == 0.5
    assert att.get("a", "zzz") == 0.0
    with pytest.raises(ValueError):
        att.set("a", "a", 1.5)


def test_permissive_default():
    att = SimilarityMatrix.permissive(0.7)
    assert att.get("anything", "goes") == 0.7


def test_candidates_sorted_and_thresholded():
    att = SimilarityMatrix()
    att.set("a", "x", 0.4)
    att.set("a", "y", 0.9)
    att.set("a", "z", 0.0)
    ranked = att.candidates("a", ["x", "y", "z", "w"])
    assert ranked == [("y", 0.9), ("x", 0.4)]
    assert att.candidates("a", ["x"], threshold=0.5) == []


def test_candidates_tie_break_alphabetical():
    att = SimilarityMatrix.permissive()
    ranked = att.candidates("a", ["zz", "aa", "mm"])
    assert [t for t, _s in ranked] == ["aa", "mm", "zz"]


def test_quality_and_validity():
    att = SimilarityMatrix()
    att.set("a", "a", 0.5)
    att.set("b", "b", 0.25)
    lam = {"a": "a", "b": "b"}
    assert att.quality(lam) == pytest.approx(0.75)
    assert att.is_valid_lambda(lam)
    assert not att.is_valid_lambda({"a": "a", "c": "x"})


def test_exact_names_with_extras():
    att = SimilarityMatrix.exact_names(SOURCE, TARGET,
                                       extra={("c", "x"): 0.6})
    assert att.get("a", "a") == 1.0
    assert att.get("b", "b") == 1.0
    assert att.get("c", "x") == 0.6
    assert att.get("c", "b") == 0.0


def test_from_mapping_unambiguous():
    att = SimilarityMatrix.from_mapping({"a": "a", "b": "x"})
    assert att.candidates("b", ["a", "b", "x"]) == [("x", 1.0)]


def test_from_names_threshold():
    att = SimilarityMatrix.from_names(SOURCE, TARGET, threshold=0.99)
    assert att.get("a", "a") == 1.0
    assert att.get("c", "x") == 0.0


def test_copy_is_independent():
    att = SimilarityMatrix()
    att.set("a", "a", 1.0)
    clone = att.copy()
    clone.set("a", "a", 0.2)
    assert att.get("a", "a") == 1.0


def test_name_similarity_properties():
    assert name_similarity("x", "x") == 1.0
    assert name_similarity("Pub-Date", "pub_date") == 1.0
    assert 0.0 <= name_similarity("qqq", "zzz") <= 0.2
    # Symmetry.
    assert name_similarity("course", "courses") == \
        name_similarity("courses", "course")
