"""ANFA model, construction and evaluation tests (Section 4.4).

The construction cases (a)–(i) are validated by checking that direct
ANFA evaluation agrees with the reference XR evaluator on a corpus of
queries and documents.
"""

import pytest

from repro.anfa.construct import anfa_of_query
from repro.anfa.evaluate import evaluate_anfa, evaluate_anfa_set
from repro.anfa.model import ANFA, fail_anfa
from repro.anfa.to_regex import RegexConversionError, anfa_to_xr
from repro.xpath.evaluator import evaluate_set
from repro.xpath.parser import parse_xr
from repro.xtree.parser import parse_xml

DOC = parse_xml(
    "<r>"
    "<a><b>one</b><c><b>deep</b></c></a>"
    "<a><b>two</b></a>"
    "<a><b>three</b><d>delta</d></a>"
    "</r>")

QUERIES = [
    ".",
    "a",
    "a/b",
    "a/b/text()",
    "a | a/c",
    "(a | c)*",
    "a[b/text()='two']",
    "a[not(d)]/b",
    "a[position()=2]/b/text()",
    "a[d or c]/b",
    "a/c/b | a/b",
    "(a/c)*/b",
    "//b",
    "//b/text()",
    "a[b][position()=1]",
    "a[not(position()=2)]",
]


@pytest.mark.parametrize("source", QUERIES)
def test_anfa_evaluation_matches_reference(source):
    query = parse_xr(source)
    anfa = anfa_of_query(query)
    assert evaluate_anfa_set(anfa, DOC) == evaluate_set(query, DOC)


def test_fail_automaton():
    assert fail_anfa().is_fail()
    assert evaluate_anfa(fail_anfa(), DOC) == []


def test_embed_copies_states():
    inner = anfa_of_query(parse_xr("a/b"))
    outer = ANFA()
    mapping = outer.embed(inner)
    assert len(mapping) == inner._count
    assert outer.finals  # finals copied


def test_trim_removes_dead_states():
    anfa = ANFA()
    dead = anfa.new_state()
    live = anfa.new_state()
    anfa.add_label(anfa.start, "a", live)
    anfa.add_label(anfa.start, "x", dead)  # dead: no final reachable
    anfa.set_final(live, None)
    trimmed = anfa.trim()
    assert trimmed._count == 2
    assert not trimmed.is_fail()


def test_size_accounts_for_annotations():
    plain = anfa_of_query(parse_xr("a"))
    qualified = anfa_of_query(parse_xr("a[b/c]"))
    assert qualified.size() > plain.size()


def test_nu_view_collects_subautomata():
    anfa = anfa_of_query(parse_xr("a[b and not(c/text()='x')]"))
    named = anfa.nu()
    assert len(named) == 2  # the b automaton and the c/text() automaton


def test_describe_is_readable():
    anfa = anfa_of_query(parse_xr("a[b]"))
    text = anfa.describe()
    assert "--a-->" in text and "theta" in text


@pytest.mark.parametrize("source", [
    "a", "a/b", "a | b", "(a)*", "a/b/text()", "a[b]", "a[b/text()='x']",
])
def test_state_elimination_roundtrip(source):
    """ANFA -> XR -> evaluation agrees with the original query."""
    query = parse_xr(source)
    anfa = anfa_of_query(query)
    recovered = anfa_to_xr(anfa)
    assert evaluate_set(recovered, DOC) == evaluate_set(query, DOC)


def test_state_elimination_rejects_fail():
    with pytest.raises(RegexConversionError):
        anfa_to_xr(fail_anfa())


def test_state_elimination_rejects_wildcard():
    anfa = anfa_of_query(parse_xr("//b"))
    with pytest.raises(RegexConversionError):
        anfa_to_xr(anfa)


def test_evaluation_is_memoised_across_contexts():
    """Kleene-star queries revisit nodes; results stay consistent."""
    doc = parse_xml("<r><n><n><n><leaf>x</leaf></n></n></n></r>")
    query = parse_xr("(n)*/leaf/text()")
    anfa = anfa_of_query(query)
    assert evaluate_anfa(anfa, doc) == ["x"]
