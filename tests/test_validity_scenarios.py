"""E4: the five Fig. 3 scenarios with Example 4.1's verdicts."""

import pytest

from repro.core.instmap import apply_embedding
from repro.core.inverse import invert
from repro.dtd.generate import random_instance
from repro.dtd.validate import conforms
from repro.workloads.library import fig3_scenarios
from repro.xtree.nodes import tree_equal

SCENARIOS = {scenario.key: scenario for scenario in fig3_scenarios()}


@pytest.mark.parametrize("key", sorted(SCENARIOS))
def test_verdict_matches_paper(key):
    scenario = SCENARIOS[key]
    valid = (scenario.embedding is not None
             and scenario.embedding.is_valid())
    assert valid == scenario.expect_valid, scenario.note


@pytest.mark.parametrize("key", [k for k, s in SCENARIOS.items()
                                 if s.expect_valid])
def test_valid_scenarios_roundtrip(key):
    scenario = SCENARIOS[key]
    assert scenario.embedding is not None
    for seed in range(5):
        instance = random_instance(scenario.source, seed=seed)
        result = apply_embedding(scenario.embedding, instance)
        assert conforms(result.tree, scenario.target)
        assert tree_equal(invert(scenario.embedding, result.tree), instance)


def test_scenario_c_uses_positions():
    scenario = SCENARIOS["c"]
    assert scenario.embedding is not None
    rendered = sorted(str(p) for p in scenario.embedding.paths.values())
    assert "Bp[position()=1]" in rendered
    assert "Bp[position()=2]" in rendered


def test_scenario_e_unfolds_cycle():
    scenario = SCENARIOS["e"]
    assert scenario.embedding is not None
    assert scenario.target.is_recursive()
    longest = max(scenario.embedding.paths.values(), key=len)
    assert len(longest) >= 3  # the unfolded cycle


def test_exact_solver_agrees_with_verdicts():
    """The exhaustive solver reaches the same conclusions."""
    from repro.core.similarity import SimilarityMatrix
    from repro.matching.exact import exact_embedding

    att = SimilarityMatrix.permissive()
    for key, scenario in sorted(SCENARIOS.items()):
        found = exact_embedding(scenario.source, scenario.target, att,
                                max_len=5)
        assert (found is not None) == scenario.expect_valid, \
            f"scenario {key}: {scenario.note}"
