"""Frontend parity: one grammar, many formats, byte-identical results.

The contract under test (ISSUE 4): the same grammar expressed as DTD
declarations, compact productions or an XSD-subset document lowers to
the *same* normalized IR — identical fingerprints, identical compiled
artifacts, identical Engine outputs and identical serve responses —
and no format can be distinguished downstream of the frontend layer.
"""

from __future__ import annotations

import pytest

from repro.core.embedding import build_embedding
from repro.dtd.serialize import dtd_to_compact, dtd_to_text
from repro.engine import ArtifactStore, Engine
from repro.schema import (
    SchemaFormatError,
    XSDParseError,
    available_formats,
    detect_format,
    dtd_to_xsd,
    load_schema,
    register_frontend,
)
from repro.serve import (
    ProtocolError,
    ReproServer,
    ServeClient,
    ServeError,
    ServiceState,
)
from repro.workloads.library import SCHEMA_LIBRARY, school_example
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

FORMATS = ("dtd", "compact", "xsd")

DOC = ("<db><class><cno>CS331</cno><title>DB</title>"
       "<type><project>p1</project></type></class></db>")


def renderings(dtd) -> dict[str, str]:
    """One schema spelled in every frontend format."""
    return {"dtd": dtd_to_text(dtd), "compact": dtd_to_compact(dtd),
            "xsd": dtd_to_xsd(dtd)}


@pytest.fixture(scope="module")
def school():
    return school_example()


# -- fingerprints -------------------------------------------------------------

def test_formats_registered():
    assert set(available_formats()) == set(FORMATS)


def test_fig1_fingerprint_parity_all_three_schemas(school):
    """Fig. 1(a)/(b)/(c) in all three formats: one fingerprint each."""
    for dtd in (school.classes, school.students, school.school):
        fingerprints = set()
        for format, text in renderings(dtd).items():
            assert detect_format(text) == format
            parsed = load_schema(text)  # auto-detection path
            assert parsed.fingerprint() == \
                load_schema(text, format=format).fingerprint()
            fingerprints.add(parsed.fingerprint())
        assert fingerprints == {dtd.fingerprint()}


def test_whole_library_xsd_roundtrip():
    """Every workload schema survives DTD → XSD → IR bit-for-bit."""
    for name, factory in SCHEMA_LIBRARY.items():
        dtd = factory()
        reparsed = load_schema(dtd_to_xsd(dtd), format="xsd")
        assert reparsed.fingerprint() == \
            load_schema(dtd_to_text(dtd)).fingerprint(), name


def test_nested_content_models_match_dtd_fresh_types():
    """Nested XSD groups produce the same generated fresh types as the
    equivalent nested DTD content model."""
    from_dtd = load_schema("""
        <!ELEMENT a (b, (c | d)?, e+)>
        <!ELEMENT b (#PCDATA)>
        <!ELEMENT c (#PCDATA)>
        <!ELEMENT d (#PCDATA)>
        <!ELEMENT e (#PCDATA)>
    """)
    from_xsd = load_schema("""
        <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="a"><xs:complexType><xs:sequence>
            <xs:element ref="b"/>
            <xs:choice minOccurs="0">
              <xs:element ref="c"/><xs:element ref="d"/>
            </xs:choice>
            <xs:element ref="e" maxOccurs="unbounded"/>
          </xs:sequence></xs:complexType></xs:element>
          <xs:element name="b" type="xs:string"/>
          <xs:element name="c" type="xs:string"/>
          <xs:element name="d" type="xs:string"/>
          <xs:element name="e" type="xs:string"/>
        </xs:schema>
    """)
    assert "a.g1" in from_xsd.types  # the hoisted choice
    assert from_dtd.fingerprint() == from_xsd.fingerprint()


def test_inline_named_declarations_hoist_in_document_order():
    inline = load_schema("""
        <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="db"><xs:complexType><xs:sequence>
            <xs:element name="rec" minOccurs="0" maxOccurs="unbounded">
              <xs:complexType><xs:sequence>
                <xs:element name="k" type="xs:string"/>
                <xs:element name="v" type="xs:string"/>
              </xs:sequence></xs:complexType>
            </xs:element>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>
    """)
    flat = load_schema("db -> rec*\nrec -> k, v\nk -> str\nv -> str")
    assert inline.fingerprint() == flat.fingerprint()


# -- the Engine boundary ------------------------------------------------------

def _sigma1_over(source, target, school):
    """Example 4.2's σ1 rebuilt over freshly parsed schemas."""
    return build_embedding(source, target, dict(school.sigma1.lam),
                           dict(school.sigma1.paths))


def test_engine_parity_map_translate_invert(school):
    """compile_schema(text, format=…) + the serving calls produce
    byte-identical outputs whichever format carried the grammar."""
    source_texts = renderings(school.classes)
    target_texts = renderings(school.school)
    outputs = {}
    for format in FORMATS:
        engine = Engine()
        source = engine.compile_schema(source_texts[format],
                                       format=format).dtd
        target = engine.compile_schema(target_texts[format]).dtd  # auto
        sigma = _sigma1_over(source, target, school)
        mapped = engine.apply_embedding(sigma, parse_xml(DOC))
        anfa = engine.translate_query(sigma, "class/cno/text()")
        recovered = engine.invert(sigma, mapped.tree)
        outputs[format] = (to_string(mapped.tree),
                           anfa.canonical_describe(),
                           to_string(recovered))
    assert outputs["dtd"] == outputs["compact"] == outputs["xsd"]


def test_engine_find_parity(school):
    """find_embedding over text-loaded schemas: one cached artifact,
    same embedding fingerprint, regardless of input format."""
    results = {}
    for format in FORMATS:
        engine = Engine()
        source = engine.load_schema(renderings(school.classes)[format],
                                    format=format)
        target = engine.load_schema(renderings(school.school)[format])
        result = engine.find_embedding(source, target, method="quality",
                                       seed=1)
        assert result.embedding is not None
        results[format] = result.embedding.fingerprint()
    assert len(set(results.values())) == 1


# -- the serve boundary -------------------------------------------------------

def _store_for(tmp_path, format, school):
    """A store built from one format's text, provenance included."""
    engine = Engine()
    source = engine.load_schema(renderings(school.classes)[format],
                                format=format)
    target = engine.load_schema(renderings(school.school)[format],
                                format=format)
    sigma = _sigma1_over(source, target, school)
    engine.compile_embedding(sigma, ensure_valid=True)
    return engine.save_store(tmp_path / f"store-{format}")


def test_serve_parity_across_formats(tmp_path, school):
    """Three daemons, each warm-started from a different format's
    store: every /v1/* response is byte-identical."""
    responses = {}
    for format in FORMATS:
        store = _store_for(tmp_path, format, school)
        # Provenance survived into the store.
        fp = school.classes.fingerprint()
        assert store.schema_format(fp) == format
        assert store.schema_source_text(fp) == \
            renderings(school.classes)[format]
        with ReproServer(store=store.root, port=0) as server:
            client = ServeClient.for_server(server)
            mapped = client.map(xml=DOC)
            translated = client.translate(query="class/cno/text()")
            inverted = client.invert(xml=mapped["result"]["output"])
            found = client.find(
                source=renderings(school.classes)[format],
                target=renderings(school.school)[format],
                format=format, method="quality", seed=1)
            found.raw.pop("seconds")  # wall clock, legitimately different
        responses[format] = (mapped, translated, inverted, found)
    assert responses["dtd"] == responses["compact"] == responses["xsd"]


def test_serve_find_format_field_validation(school):
    with ReproServer(embedding=school.sigma1, port=0) as server:
        client = ServeClient.for_server(server)
        with pytest.raises(ServeError) as excinfo:
            client.find(source="db -> class*", target="x -> str",
                        format="relaxng")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad-format"
        # A format that is known but wrong for the text: bad-schema.
        with pytest.raises(ServeError) as excinfo:
            client.find(source="db -> class*\nclass -> str",
                        target="x -> str", format="xsd")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad-schema"
        # Undetectable inline text keeps the 404 unknown-schema shape.
        with pytest.raises(ServeError) as excinfo:
            client.find(source="deadbeef", target="x -> str")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown-schema"


def test_unknown_fingerprint_is_404_even_with_default_format(school):
    """`serve --format dtd` must not turn unknown fingerprints into
    400 bad-schema: only recognisable text counts as inline."""
    state = ServiceState.from_embedding(school.sigma1)
    state.default_format = "dtd"
    with pytest.raises(ProtocolError) as excinfo:
        state.resolve_schema("deadbeef1234", "source")
    assert excinfo.value.status == 404
    assert excinfo.value.code == "unknown-schema"
    # Recognisable text is parsed with the default format: compact
    # productions under a dtd default fail as a *schema* error.
    with pytest.raises(ProtocolError) as excinfo:
        state.resolve_schema("a -> b\nb -> str", "source")
    assert excinfo.value.status == 400
    assert excinfo.value.code == "bad-schema"
    # An explicit request format always wins over the server default:
    # "auto" re-enables sniffing, a concrete format parses directly.
    sniffed = state.resolve_schema("a -> b\nb -> str", "source",
                                   format="auto")
    assert sniffed.root == "a"
    explicit = state.resolve_schema("a -> b\nb -> str", "source",
                                    format="compact")
    assert explicit.fingerprint() == sniffed.fingerprint()


def test_server_state_with_default_format_rejected(school):
    """default_format with state= would be silently dropped — refuse."""
    state = ServiceState.from_embedding(school.sigma1)
    with pytest.raises(ValueError):
        ReproServer(state=state, default_format="dtd")


# -- diagnostics & registry ---------------------------------------------------

@pytest.mark.parametrize("bad, fragment", [
    ("<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'>",
     "not well-formed"),
    ("<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'>"
     "<xs:simpleType/></xs:schema>", "unsupported top-level"),
    ("<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'>"
     "<xs:element name='a'><xs:complexType><xs:sequence>"
     "<xs:element ref='b' maxOccurs='3'/>"
     "</xs:sequence></xs:complexType></xs:element>"
     "<xs:element name='b' type='xs:string'/></xs:schema>",
     "unsupported occurrence"),
    ("<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'>"
     "<xs:element name='a' type='xs:integer'/></xs:schema>",
     "unsupported type"),
    ("<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'>"
     "<xs:element name='a' type='xs:string'/>"
     "<xs:element name='a' type='xs:string'/></xs:schema>",
     "duplicate declaration"),
    ("<schema><element name='a'/></schema>", "namespace"),
])
def test_xsd_diagnostics_are_one_line(bad, fragment):
    with pytest.raises(XSDParseError) as excinfo:
        load_schema(bad, format="xsd")
    message = str(excinfo.value)
    assert fragment in message
    assert "\n" not in message


def test_undetectable_format_raises():
    with pytest.raises(SchemaFormatError) as excinfo:
        detect_format("neither markup nor productions")
    message = str(excinfo.value)
    assert "cannot detect" in message
    for format in FORMATS:  # the diagnostic names every frontend
        assert format in message
    with pytest.raises(SchemaFormatError):
        load_schema("neither markup nor productions")
    with pytest.raises(SchemaFormatError):
        load_schema("a -> b", format="relaxng")


def test_detect_diagnostic_includes_registered_plugins():
    from repro.schema import frontend as frontend_module

    class RelaxNGStub:
        format = "rng-test"
        description = "Relax NG compact syntax (test stub)"

        def detect(self, text):
            return False

        def parse(self, text, root=None, name="dtd"):
            raise NotImplementedError

    register_frontend(RelaxNGStub())
    try:
        with pytest.raises(SchemaFormatError) as excinfo:
            detect_format("still not a schema")
        assert "rng-test" in str(excinfo.value)
        assert "rng-test" in available_formats()
    finally:
        frontend_module._FRONTENDS.pop("rng-test")


def test_register_frontend_duplicate_rejected():
    class Fake:
        format = "dtd"
        description = "clash"

        def detect(self, text):
            return False

        def parse(self, text, root=None, name="dtd"):
            raise NotImplementedError

    with pytest.raises(SchemaFormatError):
        register_frontend(Fake())


def test_store_backward_compat_schemas_without_format_key(tmp_path,
                                                          school):
    """Stores written before the frontend layer (no 'format' key on
    schema records) load and inspect as format 'dtd'."""
    engine = Engine()
    engine.compile_schema(school.classes)
    store = engine.save_store(tmp_path / "legacy")
    # Simulate a pre-frontend store: strip the new keys.
    import json
    manifest_path = store.root / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    for entry in manifest["schemas"].values():
        entry.pop("format", None)
        entry.pop("source", None)
    manifest_path.write_text(json.dumps(manifest))
    reopened = ArtifactStore(store.root, create=False)
    fp = school.classes.fingerprint()
    assert reopened.schema_format(fp) == "dtd"
    assert reopened.schema_source_text(fp) is None
    row = [r for r in reopened.describe()["schemas"]
           if r["fingerprint"] == fp][0]
    assert row["format"] == "dtd" and row["source"] is None
    assert reopened.get_schema(fp).fingerprint() == fp
