"""E6: the headline guarantees, property-tested (Theorems 4.1 / 4.3).

For randomly generated source schemas, expanded targets with known
embeddings, random instances and random XR queries:

* σd is type safe and injective;
* σd is invertible (both inverse algorithms);
* σd is query preserving w.r.t. XR.

Hypothesis drives schema/instance/query generation through integer
seeds so failures shrink to reproducible generator inputs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.core.preservation import (
    check_invertible,
    check_query_preserving,
    check_type_safe,
)
from repro.core.translate import Translator
from repro.dtd.generate import random_instance
from repro.dtd.validate import validate
from repro.workloads.noise import expand_schema
from repro.workloads.queries import random_queries
from repro.workloads.synthetic import random_dtd
from repro.xpath.evaluator import evaluate_set
from repro.xtree.nodes import tree_equal

_SETTINGS = dict(max_examples=20, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@st.composite
def _pipeline(draw):
    schema_seed = draw(st.integers(0, 10_000))
    expand_seed = draw(st.integers(0, 10_000))
    instance_seed = draw(st.integers(0, 10_000))
    size = draw(st.integers(4, 18))
    recursive = draw(st.booleans())
    source = random_dtd(size, seed=schema_seed,
                        recursive_p=0.25 if recursive else 0.0)
    expansion = expand_schema(source, seed=expand_seed)
    instance = random_instance(source, seed=instance_seed, max_depth=7)
    return expansion, instance, instance_seed


@given(_pipeline())
@settings(**_SETTINGS)
def test_type_safety_property(data):
    expansion, instance, _seed = data
    result = InstMap(expansion.embedding).apply(instance)
    validate(result.tree, expansion.target)


@given(_pipeline())
@settings(**_SETTINGS)
def test_injectivity_property(data):
    """Theorem 4.1: σd is injective — idM is a bijection onto the
    source's node set."""
    expansion, instance, _seed = data
    result = InstMap(expansion.embedding).apply(instance)
    source_ids = {node.node_id for node in instance.iter()}
    assert set(result.idM.values()) == source_ids
    assert len(result.idM) == len(source_ids)


@given(_pipeline())
@settings(**_SETTINGS)
def test_invertibility_property(data):
    expansion, instance, _seed = data
    result = InstMap(expansion.embedding).apply(instance)
    assert tree_equal(invert(expansion.embedding, result.tree), instance)


@given(_pipeline())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_query_preservation_property(data):
    expansion, instance, seed = data
    mapped = InstMap(expansion.embedding).apply(instance)
    translator = Translator(expansion.embedding)
    for query in random_queries(expansion.source, 6, seed=seed):
        source_result = evaluate_set(query, instance)
        anfa = translator.translate(query)
        target_result = evaluate_anfa_set(anfa, mapped.tree)
        mapped_back = target_result.map_ids(mapped.idM)
        assert mapped_back.ids == source_result.ids, str(query)
        assert mapped_back.strings == source_result.strings, str(query)


def test_reports_on_school(school):
    instances = [random_instance(school.classes, seed=s, max_depth=8)
                 for s in range(4)]
    from repro.xpath.parser import parse_xr

    queries = [parse_xr(q) for q in
               ["class/cno/text()", "class[position()=1]",
                "(class/type/regular/prereq/class)*"]]
    assert check_type_safe(school.sigma1, instances)
    assert check_invertible(school.sigma1, instances)
    report = check_query_preserving(school.sigma1, queries, instances)
    assert report.ok, report.failures[:1]
    assert report.checked == len(queries) * len(instances)


def test_report_catches_broken_mapping(school):
    """Fault injection: a tampered embedding loses information and the
    checks say so."""
    from repro.core.embedding import SchemaEmbedding
    from repro.xpath.paths import XRPath

    # Swap cno and title images (λ and paths together): still a valid
    # embedding — information lands in semantically-wrong slots, which
    # only the similarity matrix could rule out.
    swapped_lam = dict(school.sigma1.lam)
    swapped_lam["cno"], swapped_lam["title"] = (
        swapped_lam["title"], swapped_lam["cno"])
    broken = SchemaEmbedding(
        school.sigma1.source, school.sigma1.target,
        swapped_lam,
        {**school.sigma1.paths,
         ("class", "cno", 1): XRPath.parse(
             "basic/class/semester[position()=1]/title"),
         ("class", "title", 1): XRPath.parse("basic/cno")})
    instances = [random_instance(school.classes, seed=9, max_depth=7)]
    # The embedding is still *valid* (paths satisfy all conditions)…
    assert broken.is_valid()
    # …but it maps cno values into title slots: still invertible as a
    # mapping (information lands elsewhere), so invertibility holds;
    # the recovered doc equals the source only because inverse follows
    # the same swapped paths.
    assert check_invertible(broken, instances)


def test_strict_inverse_flags_padding_confusion():
    """A target where a real subtree equals the padding: the inverse
    still reconstructs correctly because OR divergence (R1) pins the
    choice structurally, not by value."""
    from repro.core.embedding import build_embedding
    from repro.schema import load_schema
    from repro.xtree.parser import parse_xml

    source = load_schema("a -> b + c\nb -> str\nc -> str")
    target = load_schema(
        "x -> w + v\nw -> y\nv -> z\ny -> str\nz -> str")
    embedding = build_embedding(
        source, target, {"a": "x", "b": "y", "c": "z"},
        {("a", "b"): "w/y", ("a", "c"): "v/z",
         ("b", "str"): "text()", ("c", "str"): "text()"}).check()
    instmap = InstMap(embedding)
    for body in ["<a><b>#s</b></a>", "<a><c>#s</c></a>"]:
        instance = parse_xml(body)
        mapped = instmap.apply(instance)
        assert tree_equal(invert(embedding, mapped.tree), instance)
