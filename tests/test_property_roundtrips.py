"""Hypothesis property tests: parser/serializer round-trips and
cross-implementation agreement (XR evaluator vs ANFA)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anfa.construct import anfa_of_query
from repro.anfa.evaluate import evaluate_anfa_set
from repro.dtd.generate import random_instance
from repro.workloads.queries import random_queries
from repro.workloads.synthetic import random_dtd
from repro.xpath.evaluator import evaluate_set
from repro.xpath.parser import parse_xr
from repro.xtree.nodes import ElementNode, TextNode, tree_equal
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

_SETTINGS = dict(max_examples=40, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

_TAGS = st.sampled_from(["a", "b", "c", "data", "x-y", "n_1"])
_TEXTS = st.text(
    alphabet=st.characters(codec="utf-8",
                           blacklist_categories=("Cs", "Cc")),
    min_size=1, max_size=12).filter(lambda s: s.strip() == s and s)


@st.composite
def _trees(draw, depth=0):
    node = ElementNode(draw(_TAGS))
    last_was_text = False
    if depth < 3:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                node.append(draw(_trees(depth=depth + 1)))
                last_was_text = False
            elif not last_was_text:
                # Adjacent text nodes merge on serialisation (standard
                # XML behaviour), so don't generate them.
                node.append(TextNode(draw(_TEXTS)))
                last_was_text = True
    return node


@given(_trees())
@settings(**_SETTINGS)
def test_xml_roundtrip_property(tree):
    # Compact form: whitespace-significant values survive exactly when
    # elements have pure-text content (our data model's shape).
    rendered = to_string(tree, indent=None)
    reparsed = parse_xml(rendered, keep_whitespace=True)
    assert tree_equal(reparsed, tree)


@given(st.integers(0, 100_000), st.integers(2, 14))
@settings(**_SETTINGS)
def test_xr_parser_roundtrip_property(seed, size):
    dtd = random_dtd(size, seed=seed % 1000, recursive_p=0.2)
    for query in random_queries(dtd, 3, seed=seed):
        rendered = str(query)
        assert parse_xr(rendered) == query, rendered


@given(st.integers(0, 100_000))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_anfa_matches_evaluator_property(seed):
    """Source-side ANFA construction ≡ the direct XR evaluator."""
    rng = random.Random(seed)
    dtd = random_dtd(rng.randint(3, 12), seed=seed % 997,
                     recursive_p=0.25)
    instance = random_instance(dtd, seed=seed % 991, max_depth=6)
    for query in random_queries(dtd, 4, seed=seed % 983):
        direct = evaluate_set(query, instance)
        via_anfa = evaluate_anfa_set(anfa_of_query(query), instance)
        assert direct == via_anfa, str(query)


@given(st.integers(0, 100_000))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_instance_generator_conforms_property(seed):
    from repro.dtd.validate import conforms

    dtd = random_dtd(seed % 17 + 2, seed=seed % 1009, recursive_p=0.3)
    assert conforms(random_instance(dtd, seed=seed), dtd)
