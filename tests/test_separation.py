"""E2/E3: the Theorem 3.1 separations, executed.

(1) the Fig. 2 chain mapping is invertible; its ``//B`` translation is
    the XR query ``A/A/(A/A/A)*`` (not in the fragment X);
(2) the sorting mapping preserves position-free X queries but is not
    invertible (two sources, one image).
"""

import pytest

from repro.core.separation import (
    fig2_map,
    fig2_source_dtd,
    fig2_source_descendant_b,
    fig2_target_dtd,
    fig2_translated_descendant_b,
    fig2_unmap,
    sorting_dtd,
    sorting_map,
    sorting_translate,
)
from repro.dtd.validate import validate
from repro.xpath.ast import contains_star
from repro.xpath.evaluator import evaluate_set
from repro.xpath.parser import parse_xr
from repro.xtree.nodes import elem, tree_equal


def _chain_instance(depth: int):
    """r/A(B(A(…)),C) with `depth` A-levels."""
    node = None
    for _ in range(depth):
        inner = elem("B") if node is None else elem("B", node)
        node = elem("A", inner, elem("C"))
    assert node is not None
    return elem("r", node)


@pytest.mark.parametrize("depth", [1, 2, 3, 5])
def test_fig2_mapping_type_safe(depth):
    instance = _chain_instance(depth)
    validate(instance, fig2_source_dtd())
    image, _idm = fig2_map(instance)
    validate(image, fig2_target_dtd())
    # The image is a pure chain of 3·depth A nodes.
    count = 0
    node = image
    while node.element_children():
        node = node.element_children()[0]
        count += 1
    assert count == 3 * depth


@pytest.mark.parametrize("depth", [1, 2, 4])
def test_fig2_invertible(depth):
    instance = _chain_instance(depth)
    image, _idm = fig2_map(instance)
    assert tree_equal(fig2_unmap(image), instance)


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_fig2_descendant_b_equivalence(depth):
    """//B on the source ≡ A^{3k+2} on the target (via idM)."""
    instance = _chain_instance(depth)
    image, idm = fig2_map(instance)
    source_result = evaluate_set(fig2_source_descendant_b(), instance)
    target_result = evaluate_set(fig2_translated_descendant_b(), image)
    assert frozenset(idm[i] for i in target_result.ids) == source_result.ids
    assert len(source_result.ids) == depth


def test_fig2_translation_needs_kleene_star():
    """The equivalent target query uses p* — outside the fragment X.

    (That A^{3k+2} is not expressible in X at all is Theorem 3.1's
    pumping-style argument; here we check the witness query's shape.)
    """
    assert contains_star(fig2_translated_descendant_b())


def test_fig2_no_fixed_depth_x_query_works():
    """Any fixed star-free chain A/…/A misses deep B images."""
    deep = _chain_instance(4)
    image, idm = fig2_map(deep)
    source_ids = evaluate_set(fig2_source_descendant_b(), deep).ids
    for fixed_depth in range(1, 9):
        query = parse_xr("/".join(["A"] * fixed_depth))
        result = evaluate_set(query, image)
        mapped = frozenset(idm[i] for i in result.ids)
        assert mapped != source_ids or len(source_ids) <= 1


def test_sorting_map_not_invertible():
    """Two distinct sources with the same image: no inverse exists."""
    first = elem("r", elem("A", "zeta"), elem("A", "alpha"))
    second = elem("r", elem("A", "alpha"), elem("A", "zeta"))
    assert not tree_equal(first, second)
    assert tree_equal(sorting_map(first), sorting_map(second))


def test_sorting_map_type_safe():
    instance = elem("r", elem("A", "b"), elem("A", "a"))
    validate(sorting_map(instance), sorting_dtd())


@pytest.mark.parametrize("source", [
    ".", "A", "A[text()='alpha']", "A[not(text()='zeta')]",
    "A/text()",
])
def test_sorting_preserves_position_free_queries(source):
    """Identity translation works for X without position() — the
    query answers are order-insensitive sets."""
    instance = elem("r", elem("A", "zeta"), elem("A", "alpha"),
                    elem("A", "mid"))
    image = sorting_map(instance)
    query = parse_xr(source)
    translated = sorting_translate(query)
    src = evaluate_set(query, instance)
    tgt = evaluate_set(translated, image)
    # Ids differ (fresh nodes) but cardinalities and strings agree —
    # the bijection of the proof.
    assert len(src.ids) == len(tgt.ids)
    assert src.strings == tgt.strings


def test_sorting_breaks_positional_queries():
    instance = elem("r", elem("A", "zeta"), elem("A", "alpha"))
    image = sorting_map(instance)
    query = parse_xr("A[position()=1]/text()")
    assert evaluate_set(query, instance).strings == frozenset({"zeta"})
    assert evaluate_set(query, image).strings == frozenset({"alpha"})
