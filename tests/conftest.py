"""Shared fixtures: the paper's running example and common workloads."""

from __future__ import annotations

import pytest

from repro.core.similarity import SimilarityMatrix
from repro.workloads.library import SCHEMA_LIBRARY, school_example
from repro.workloads.noise import expand_schema


@pytest.fixture(scope="session")
def school():
    """The Fig. 1 bundle (schemas + σ1 + σ2 + att)."""
    return school_example()


@pytest.fixture(scope="session")
def permissive_att():
    return SimilarityMatrix.permissive()


@pytest.fixture(scope="session")
def bib_expansion():
    """A small expanded target with ground-truth embedding."""
    return expand_schema(SCHEMA_LIBRARY["bib"](), seed=11)


@pytest.fixture(scope="session")
def orders_expansion():
    """A mid-size expansion exercising disjunctions and stars."""
    return expand_schema(SCHEMA_LIBRARY["orders"](), seed=23)
