"""DTD serializer round-trips (plus property tests via hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema import load_schema
from repro.dtd.serialize import dtd_to_compact, dtd_to_text
from repro.workloads.library import SCHEMA_LIBRARY, school_example
from repro.workloads.synthetic import random_dtd


def _equivalent(a, b) -> bool:
    return (a.root == b.root
            and set(a.types) == set(b.types)
            and all(a.production(t) == b.production(t) for t in a.types))


def test_school_roundtrip_text():
    school = school_example().school
    rebuilt = load_schema(dtd_to_text(school), root=school.root)
    assert _equivalent(school, rebuilt)


def test_school_roundtrip_compact():
    school = school_example().school
    rebuilt = load_schema(dtd_to_compact(school), root=school.root)
    assert _equivalent(school, rebuilt)


def test_library_roundtrips():
    for name, factory in SCHEMA_LIBRARY.items():
        dtd = factory()
        rebuilt = load_schema(dtd_to_text(dtd), root=dtd.root)
        assert _equivalent(dtd, rebuilt), name


@given(st.integers(1, 40), st.integers(0, 1000), st.floats(0, 0.5))
@settings(max_examples=40, deadline=None)
def test_random_dtd_roundtrip(size, seed, recursive_p):
    dtd = random_dtd(size, seed=seed, recursive_p=recursive_p)
    rebuilt = load_schema(dtd_to_text(dtd), root=dtd.root)
    assert _equivalent(dtd, rebuilt)
    rebuilt_compact = load_schema(dtd_to_compact(dtd), root=dtd.root)
    assert _equivalent(dtd, rebuilt_compact)


def test_optional_disjunction_rendering():
    dtd = load_schema("a -> b + eps\nb -> str")
    text = dtd_to_text(dtd)
    assert "(b)?" in text
    rebuilt = load_schema(text)
    assert rebuilt.production("a").optional


def test_repeated_children_rendering():
    dtd = load_schema("a -> b, b\nb -> str")
    rebuilt = load_schema(dtd_to_text(dtd))
    assert rebuilt.production("a").children == ("b", "b")
