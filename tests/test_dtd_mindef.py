"""Unit tests: minimum default instances (Section 4.2, Example 4.3)."""

import pytest

from repro.dtd.mindef import DEFAULT_STRING, MinDef, mindef_tree
from repro.dtd.model import SchemaError
from repro.schema import load_schema
from repro.dtd.validate import conforms
from repro.workloads.library import school_example
from repro.xtree.serialize import to_string


def test_str_mindef_is_hash_s():
    dtd = load_schema("a -> str")
    assert to_string(mindef_tree(dtd, "a"), indent=None) == \
        f"<a>{DEFAULT_STRING}</a>"


def test_star_mindef_is_childless():
    dtd = load_schema("a -> b*\nb -> str")
    assert to_string(mindef_tree(dtd, "a"), indent=None) == "<a/>"


def test_concat_mindef_has_all_children():
    dtd = load_schema("a -> b, c\nb -> str\nc -> d*\nd -> str")
    assert to_string(mindef_tree(dtd, "a"), indent=None) == \
        "<a><b>#s</b><c/></a>"


def test_disjunction_mindef_picks_alphabetical_minimum():
    """Example 4.3: mindef(category) chooses 'advanced' over
    'mandatory' — the fixed order on types is alphabetical."""
    bundle = school_example()
    mindef = MinDef(bundle.school)
    rendered = to_string(mindef.template("category"), indent=None)
    assert rendered.startswith("<category><advanced>")
    assert mindef.default_choice["category"] == "advanced"


def test_example_4_3_mindef_student():
    """mindef(student) from Example 4.3 (gpa added in the journal
    version's Fig. 1(c))."""
    bundle = school_example()
    rendered = to_string(MinDef(bundle.school).template("student"),
                         indent=None)
    assert rendered == ("<student><ssn>#s</ssn><name>#s</name>"
                        "<gpa>#s</gpa><taking/></student>")


def test_example_4_3_mindef_prereq():
    bundle = school_example()
    assert to_string(MinDef(bundle.school).template("prereq"),
                     indent=None) == "<prereq/>"


def test_optional_disjunction_defaults_to_epsilon():
    dtd = load_schema("a -> b + eps\nb -> str")
    mindef = MinDef(dtd)
    assert mindef.default_choice["a"] is None
    assert to_string(mindef.template("a"), indent=None) == "<a/>"


def test_disjunction_skips_unproductive_alternative():
    dtd = load_schema("r -> a\na -> zz + b\nb -> str\nzz -> zz")
    # 'zz' never reaches rank 0; the DTD is inconsistent overall.
    with pytest.raises(SchemaError):
        MinDef(dtd)
    from repro.dtd.consistency import remove_useless_types

    cleaned = remove_useless_types(dtd)
    assert MinDef(cleaned).default_choice["a"] == "b"


def test_recursive_schema_mindef_terminates():
    dtd = load_schema("r -> a\na -> r + b\nb -> str")
    mindef = MinDef(dtd)
    assert to_string(mindef.template("a"), indent=None) == "<a><b>#s</b></a>"


def test_mindef_conforms_to_schema():
    bundle = school_example()
    mindef = MinDef(bundle.school)
    for element_type in bundle.school.types:
        # Validate against a sub-schema rooted at the type.
        from repro.dtd.model import DTD

        sub = DTD(dict(bundle.school.elements), element_type)
        assert conforms(mindef.instance(element_type), sub), element_type


def test_instance_returns_fresh_ids():
    dtd = load_schema("a -> b\nb -> str")
    mindef = MinDef(dtd)
    first, second = mindef.instance("a"), mindef.instance("a")
    assert first.node_id != second.node_id


def test_rank_zero_everywhere_on_consistent_schema():
    bundle = school_example()
    mindef = MinDef(bundle.school)
    assert all(rank == 0 for rank in mindef.rank.values())


def test_mindef_size():
    dtd = load_schema("a -> b, c\nb -> str\nc -> str")
    assert MinDef(dtd).size("a") == 5
