"""Workload generators: library schemas, expansion, noise, synthesis."""

import pytest

from repro.core.similarity import SimilarityMatrix
from repro.dtd.consistency import is_consistent
from repro.dtd.generate import random_instance
from repro.dtd.validate import conforms
from repro.workloads.library import SCHEMA_LIBRARY, school_example
from repro.workloads.noise import expand_schema, noisy_att
from repro.workloads.queries import random_queries
from repro.workloads.synthetic import random_dtd
from repro.xpath.evaluator import evaluate_set


@pytest.mark.parametrize("name", sorted(SCHEMA_LIBRARY))
def test_library_schemas_consistent(name):
    dtd = SCHEMA_LIBRARY[name]()
    assert is_consistent(dtd)
    assert conforms(random_instance(dtd, seed=1), dtd)


def test_school_bundle_complete():
    bundle = school_example()
    assert bundle.sigma1.is_valid(bundle.att)
    assert bundle.sigma2.is_valid(bundle.att)
    # σ1 reproduces the Example 4.2 paths verbatim.
    assert str(bundle.sigma1.path_for("class", "title")) == \
        "basic/class/semester[position()=1]/title"
    assert str(bundle.sigma1.path_for("type", "regular")) == \
        "mandatory/regular"
    assert str(bundle.sigma2.path_for("db", "student")) == \
        "students/student"


@pytest.mark.parametrize("seed", range(6))
def test_expansion_embedding_always_valid(seed):
    source = SCHEMA_LIBRARY["orders"]()
    expansion = expand_schema(source, seed=seed)
    assert expansion.embedding.is_valid()
    assert is_consistent(expansion.target)
    assert expansion.target.node_count() > source.node_count()


@pytest.mark.parametrize("wrap_max,junk_prob", [(0, 0.0), (1, 0.1),
                                                (3, 0.6)])
def test_expansion_knobs(wrap_max, junk_prob):
    source = SCHEMA_LIBRARY["bib"]()
    expansion = expand_schema(source, seed=3, wrap_max=wrap_max,
                              junk_prob=junk_prob)
    assert expansion.embedding.is_valid()
    if wrap_max == 0 and junk_prob == 0.0:
        # Pure copy: the target equals the source modulo naming.
        assert expansion.target.node_count() == source.node_count()


def test_expansion_rename():
    source = SCHEMA_LIBRARY["parts"]()
    expansion = expand_schema(source, seed=1, rename=True)
    assert expansion.lam["part"] == "part_t"
    assert expansion.embedding.is_valid()


def test_noisy_att_zero_noise_is_unambiguous(bib_expansion):
    att = noisy_att(bib_expansion, 0.0, seed=1)
    for source_type in bib_expansion.source.types:
        candidates = att.candidates(source_type,
                                    bib_expansion.target.types)
        assert [c for c, _s in candidates] == \
            [bib_expansion.lam[source_type]]


def test_noisy_att_adds_ambiguity(bib_expansion):
    att = noisy_att(bib_expansion, 1.0, seed=1)
    ambiguous = sum(
        1 for source_type in bib_expansion.source.types
        if len(att.candidates(source_type,
                              bib_expansion.target.types)) > 1)
    assert ambiguous > 0


def test_noisy_att_truth_always_admissible(bib_expansion):
    att = noisy_att(bib_expansion, 1.0, seed=7)
    for source_type in bib_expansion.source.types:
        assert att.get(source_type, bib_expansion.lam[source_type]) > 0


@pytest.mark.parametrize("size", [1, 5, 20, 60])
def test_random_dtd_sizes(size):
    dtd = random_dtd(size, seed=size)
    assert dtd.node_count() == size
    assert is_consistent(dtd)


def test_random_dtd_recursive_flag():
    recursive_found = any(random_dtd(20, seed=s, recursive_p=0.6)
                          .is_recursive() for s in range(6))
    assert recursive_found


def test_random_dtd_instances_conform():
    for seed in range(5):
        dtd = random_dtd(15, seed=seed, recursive_p=0.3)
        instance = random_instance(dtd, seed=seed)
        assert conforms(instance, dtd)


def test_random_queries_parse_and_run(school):
    queries = random_queries(school.classes, 20, seed=3)
    assert len(queries) == 20
    instance = random_instance(school.classes, seed=8, max_depth=8)
    non_empty = 0
    for query in queries:
        result = evaluate_set(query, instance)
        if len(result):
            non_empty += 1
    # Schema-aware generation should hit the instance often.
    assert non_empty >= len(queries) // 3


def test_similarity_from_names(school):
    att = SimilarityMatrix.from_names(school.classes, school.school)
    assert att.get("cno", "cno") == 1.0
    assert att.get("class", "class") == 1.0
    candidates = att.candidates("title", school.school.types)
    assert candidates[0][0] == "title"


def test_name_similarity_metric():
    from repro.core.similarity import name_similarity

    assert name_similarity("Course", "course") == 1.0
    assert name_similarity("cno", "xyz") < 0.3
    assert name_similarity("student", "students") > 0.6
